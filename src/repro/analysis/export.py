"""Trace export: session results to CSV / JSON for external plotting.

The benchmark suite prints ASCII tables; anyone who wants the paper's
actual *plots* needs the underlying series.  These helpers dump a
session's traces in plain formats any plotting stack reads.
"""

from __future__ import annotations

import csv
import io
import json
import math
import pathlib
from typing import Union

from ..errors import ConfigurationError
from ..ioutil import atomic_write_text

PathLike = Union[str, pathlib.Path]


def json_sanitize(value):
    """``value`` with every non-finite float replaced by ``None``.

    ``json.dumps`` happily emits bare ``Infinity``/``NaN`` tokens,
    which are not JSON and break strict parsers downstream.  Metrics
    can legitimately be non-finite (e.g.
    :attr:`~repro.core.quality.QualityReport.metering_error` when the
    display showed no content at all), so every export path runs its
    document through this before serializing with ``allow_nan=False``.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_sanitize(item)
                for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_sanitize(item) for item in value]
    return value


def session_summary_dict(result) -> dict:
    """A JSON-ready summary of one session.

    A ``telemetry`` block appears **only** when the session ran with
    telemetry enabled — summaries of untelemetered sessions stay
    byte-identical to the pre-telemetry schema (the equivalence tests
    rely on this).
    """
    report = result.power_report()
    quality = result.quality_report()
    summary = {
        "app": result.profile.name,
        "category": result.profile.category.value,
        "governor": result.governor_name,
        "duration_s": result.duration_s,
        "seed": result.config.seed,
        "mean_power_mw": report.mean_power_mw,
        "energy_mj": report.energy_mj,
        "component_power_mw": report.component_power_mw(),
        "mean_refresh_hz": result.mean_refresh_rate_hz,
        "rate_switches": result.panel.rate_switches,
        "frame_rate_fps": result.mean_frame_rate_fps,
        "content_rate_fps": result.mean_content_rate_fps,
        "redundant_rate_fps": result.mean_redundant_rate_fps,
        "display_quality": quality.display_quality,
        "dropped_fps": quality.dropped_fps,
        "metering_error": quality.metering_error,
        "touches": len(result.touch_script),
        "faults": result.fault_summary_dict(),
    }
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        summary["telemetry"] = telemetry.summary_dict()
    return summary


def write_session_json(result, path: PathLike) -> pathlib.Path:
    """Write the session summary as strict JSON; returns the path.

    Non-finite metrics serialize as ``null`` (see
    :func:`json_sanitize`); ``allow_nan=False`` guarantees the output
    never contains the non-standard ``Infinity``/``NaN`` tokens.
    """
    document = json_sanitize(session_summary_dict(result))
    text = json.dumps(document, indent=2, allow_nan=False) + "\n"
    return atomic_write_text(pathlib.Path(path), text)


def write_trace_csv(result, path: PathLike,
                    bin_width_s: float = 1.0) -> pathlib.Path:
    """Write the binned time series of one session as CSV.

    Columns: ``time_s, frame_rate_fps, content_rate_fps,
    measured_content_fps, refresh_hz, power_mw`` — everything Figures
    2, 7 and 8 plot, on a shared time axis.
    """
    if bin_width_s <= 0:
        raise ConfigurationError("bin_width_s must be > 0")
    duration = result.duration_s
    centers, frame_rate = result.compositions.binned_rate(
        0.0, duration, bin_width_s)
    _, content_rate = result.meaningful_compositions.binned_rate(
        0.0, duration, bin_width_s)
    _, measured = result.meter.meaningful_frames.binned_rate(
        0.0, duration, bin_width_s)
    refresh = result.panel.rate_history.sample(centers)
    _, power = result.power_trace(bin_width_s=bin_width_s)

    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "frame_rate_fps",
                     "content_rate_fps", "measured_content_fps",
                     "refresh_hz", "power_mw"])
    for row in zip(centers, frame_rate, content_rate, measured,
                   refresh, power):
        writer.writerow([f"{value:.6g}" for value in row])
    return atomic_write_text(pathlib.Path(path), buffer.getvalue())


def write_events_csv(result, path: PathLike) -> pathlib.Path:
    """Write the raw event timeline of one session as CSV.

    One row per event: ``time_s, kind`` where kind is one of
    ``touch``, ``content_change``, ``frame_update``,
    ``meaningful_frame``.
    """
    events = []
    events += [(t, "touch") for t in result.touch_script.times]
    events += [(float(t), "content_change")
               for t in result.application.content_changes.times]
    events += [(float(t), "frame_update")
               for t in result.compositions.times]
    events += [(float(t), "meaningful_frame")
               for t in result.meaningful_compositions.times]
    events.sort()

    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "kind"])
    for time, kind in events:
        writer.writerow([f"{time:.6f}", kind])
    return atomic_write_text(pathlib.Path(path), buffer.getvalue())
