"""Analysis utilities: summary statistics and table aggregation.

These helpers turn session traces into the numbers the paper reports:
mean ± standard deviation per application category, "for 80 % of
applications"-style percentile statements, and plain-text tables for
benchmark output.
"""

from .aggregate import CategorySummary, MethodSummary, summarize_categories
from .ascii_plot import bar_chart, sparkline, timeline
from .export import (
    session_summary_dict,
    write_events_csv,
    write_session_json,
    write_trace_csv,
)
from .jank import JankReport, analyze_jank, session_jank
from .latency import (
    LatencyReport,
    session_touch_latency,
    touch_response_latencies,
)
from .stats import MeanStd, mean_std, percentile_of_apps, savings_percent
from .sweep import (
    SWEEP_SCHEMA,
    compare_sweep,
    expand_grid,
    format_sweep,
    parse_grid,
    run_sweep,
)
from .tables import format_table

__all__ = [
    "CategorySummary",
    "bar_chart",
    "MeanStd",
    "MethodSummary",
    "JankReport",
    "LatencyReport",
    "analyze_jank",
    "format_table",
    "mean_std",
    "percentile_of_apps",
    "savings_percent",
    "SWEEP_SCHEMA",
    "compare_sweep",
    "expand_grid",
    "format_sweep",
    "parse_grid",
    "run_sweep",
    "session_jank",
    "session_summary_dict",
    "session_touch_latency",
    "sparkline",
    "timeline",
    "summarize_categories",
    "touch_response_latencies",
    "write_events_csv",
    "write_session_json",
    "write_trace_csv",
]
