"""Terminal plotting: sparklines and bar charts for trace inspection.

The repository is terminal-first (no plotting dependencies), so the
examples and benchmarks render their series as Unicode sparklines and
horizontal bar charts.  These are deliberately tiny, deterministic, and
fully tested — they are part of the public analysis API, not throwaway
helpers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

#: Eight-level block characters, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float],
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a series as a one-line Unicode sparkline.

    ``lo``/``hi`` pin the scale (defaults: the data's own min/max); a
    flat series renders at the lowest level.  NaNs render as spaces.
    """
    if len(values) == 0:
        raise ConfigurationError("sparkline of an empty series")
    arr = np.asarray(values, dtype=float)
    finite = arr[np.isfinite(arr)]
    if len(finite) == 0:
        return " " * len(arr)
    lo = float(finite.min()) if lo is None else float(lo)
    hi = float(finite.max()) if hi is None else float(hi)
    if hi < lo:
        raise ConfigurationError(f"hi ({hi}) must be >= lo ({lo})")
    span = hi - lo
    chars: List[str] = []
    for value in arr:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        if span == 0:
            index = 0
        else:
            clipped = min(max(value, lo), hi)
            index = int((clipped - lo) / span * (len(SPARK_LEVELS) - 1)
                        + 0.5)
        chars.append(SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, unit: str = "") -> str:
    """Render a labelled horizontal bar chart.

    Bars scale to the maximum value; each row shows the label, the
    bar, and the numeric value.  Negative values render as empty bars
    with the number shown (savings can legitimately be negative).
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"{len(labels)} labels for {len(values)} values")
    if not labels:
        raise ConfigurationError("bar chart needs at least one row")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    peak = max((v for v in values if v > 0), default=0.0)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 or value <= 0 else \
            max(1, int(round(width * value / peak)))
        bar = "█" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:.1f}{unit}")
    return "\n".join(lines)


def timeline(values: Sequence[float], levels: Sequence[float],
             symbols: str = "_.-=#") -> str:
    """Map a series onto discrete level symbols (refresh-rate traces).

    Each value is matched to the nearest entry of ``levels`` (ascending)
    and rendered with the corresponding symbol — the Figure 7 trace as
    one terminal line.
    """
    if len(levels) == 0:
        raise ConfigurationError("timeline needs at least one level")
    if len(levels) > len(symbols):
        raise ConfigurationError(
            f"{len(levels)} levels but only {len(symbols)} symbols")
    ordered = sorted(levels)
    out = []
    for value in values:
        index = int(np.argmin([abs(value - lv) for lv in ordered]))
        out.append(symbols[index])
    return "".join(out)
