"""Jank analysis: stutter structure of dropped frames (extension).

The paper's quality metric is a session-average ratio, but users do
not perceive averages — they perceive *stutter*: several consecutive
content updates collapsing into one displayed frame reads as a visible
hitch, while the same number of drops scattered one-by-one is
invisible.  This module extracts the run structure of coalesced
content from the ground-truth logs.

Definitions
-----------
Between two consecutive displayed meaningful frames, every content
instant beyond the first was coalesced (lost).  A **jank episode** is a
display gap in which at least ``min_run`` content instants were lost —
the user saw the screen freeze through several updates' worth of
content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import ensure_positive, ensure_positive_int


@dataclass(frozen=True)
class JankReport:
    """Stutter statistics for one session."""

    duration_s: float
    total_content: int
    total_lost: int
    episodes: Tuple[Tuple[float, int], ...]  # (gap end time, run len)
    min_run: int

    @property
    def lost_fraction(self) -> float:
        """Share of content instants that never displayed."""
        if self.total_content == 0:
            return 0.0
        return self.total_lost / self.total_content

    @property
    def episodes_per_minute(self) -> float:
        """Jank episodes per minute of session."""
        return 60.0 * len(self.episodes) / self.duration_s

    @property
    def worst_run(self) -> int:
        """Longest run of consecutively lost content instants."""
        if not self.episodes:
            return 0
        return max(run for _, run in self.episodes)


def analyze_jank(content_times: Sequence[float],
                 displayed_times: Sequence[float],
                 duration_s: float,
                 min_run: int = 3) -> JankReport:
    """Extract stutter structure from ground-truth event logs.

    Parameters
    ----------
    content_times:
        When the application generated distinct content (ground truth).
    displayed_times:
        When meaningful frames reached the framebuffer.
    duration_s:
        Session length.
    min_run:
        Lost-in-a-row threshold for an episode to count as jank
        (3 consecutive lost updates at 30 fps content is a ~100 ms
        freeze — squarely visible).
    """
    ensure_positive(duration_s, "duration_s")
    ensure_positive_int(min_run, "min_run")
    content = np.sort(np.asarray(list(content_times), dtype=float))
    displayed = np.sort(np.asarray(list(displayed_times), dtype=float))

    if len(content) == 0:
        return JankReport(duration_s=duration_s, total_content=0,
                          total_lost=0, episodes=(), min_run=min_run)

    # For each content instant, which display gap does it fall in?
    # Gap k spans (displayed[k-1], displayed[k]]; instants in the same
    # gap beyond the first are lost.  Content after the last displayed
    # frame is pending/lost too (gap index len(displayed)).
    gap_index = np.searchsorted(displayed, content, side="left")
    episodes: List[Tuple[float, int]] = []
    total_lost = 0
    unique, counts = np.unique(gap_index, return_counts=True)
    for gap, count in zip(unique, counts):
        lost = int(count) - 1
        if lost <= 0:
            continue
        total_lost += lost
        if lost >= min_run:
            end = (float(displayed[gap]) if gap < len(displayed)
                   else duration_s)
            episodes.append((end, lost))
    return JankReport(
        duration_s=duration_s,
        total_content=len(content),
        total_lost=total_lost,
        episodes=tuple(sorted(episodes)),
        min_run=min_run,
    )


def session_jank(result, min_run: int = 3) -> JankReport:
    """Jank report for a :class:`~repro.sim.session.SessionResult`."""
    if min_run < 1:
        raise ConfigurationError("min_run must be >= 1")
    return analyze_jank(
        result.application.content_changes.times,
        result.meaningful_compositions.times,
        result.duration_s,
        min_run=min_run,
    )
