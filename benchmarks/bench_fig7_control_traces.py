"""Figure 7 — content-rate / refresh-rate traces under control.

Paper shapes asserted here:

* with section-based control alone, the refresh rate lags sudden
  content-rate rises around touches and frames are dropped;
* touch boosting spikes the rate to maximum at touches, cutting the
  dropped frames substantially and keeping quality high;
* the refresh rate visibly fluctuates (the governor is really
  switching panel modes, not parked).
"""

from repro.experiments import fig7

from conftest import publish

DURATION_S = 60.0


def test_fig7_reproduction(benchmark):
    result = benchmark.pedantic(
        lambda: fig7.run(duration_s=DURATION_S, seed=1),
        rounds=1, iterations=1)
    publish("fig7_control_traces", result.format())

    for app in ("Facebook", "Jelly Splash"):
        section = result.traces[(app, "section")]
        boosted = result.traces[(app, "section+boost")]

        # The governor is actively switching rates.
        assert section.rate_switches >= 4, app
        assert boosted.rate_switches >= 4, app

        # Touch boosting fires on touches and drops fewer frames.
        assert boosted.boosts > 0, app
        assert boosted.dropped_fps <= section.dropped_fps + 0.05, app
        assert boosted.quality >= section.quality - 0.02, app

        # With boosting the quality is near-perfect (paper: the
        # occurrence of frame dropping is significantly reduced).
        assert boosted.quality > 0.9, app

        # Both run well below the fixed 60 Hz on average.
        assert section.mean_refresh_hz < 50.0, app

    # Facebook (idle-heavy) reaches a lower mean refresh than the
    # free-running game under the same policy.
    assert result.traces[("Facebook", "section")].mean_refresh_hz < \
        result.traces[("Jelly Splash", "section")].mean_refresh_hz + 10.0
