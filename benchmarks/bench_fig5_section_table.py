"""Figure 5 — the predefined section table, regenerated from Equation 1.

A design artifact rather than a measurement, but the one place the
paper prints exact numbers with no hardware in the loop — so the
reproduction must match digit for digit: thresholds at 10/22/27/35 fps
and the worked example (8 fps -> 20 Hz, 33 fps -> 40 Hz).
"""

from repro.experiments import fig5

from conftest import publish


def test_fig5_reproduction(benchmark):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    publish("fig5_section_table", result.format())

    assert result.matches_paper
    for content, expected, selected in result.example_outcomes:
        assert expected == selected, content

    table = result.table
    # The structural properties the paper derives Equation (1) for.
    assert table.headroom_ok()
    assert table.min_rate_hz == 20.0
    assert table.max_rate_hz == 60.0
    highs = [s.high for s in table.sections[:-1]]
    assert highs == [10.0, 22.0, 27.0, 35.0]


def test_fig5_lookup_kernel(benchmark):
    """Micro-benchmark: one table lookup (runs every 200 ms on-device,
    so it had better be trivial)."""
    table = fig5.run().table
    benchmark(lambda: table.lookup(23.7))
