"""Figure 2 — frame-rate traces of Facebook and Jelly Splash.

Paper shape: Facebook's frame rate is "low most of the time, except
when user requests occur"; Jelly Splash "remains at about 60 fps most
of the time, even when the content of frame is not changed".
"""

import numpy as np

from repro.experiments import fig2

from conftest import publish

DURATION_S = 60.0


def test_fig2_reproduction(benchmark):
    result = benchmark.pedantic(
        lambda: fig2.run(duration_s=DURATION_S, seed=1),
        rounds=1, iterations=1)
    publish("fig2_frame_rate_traces", result.format())

    facebook = result.traces["Facebook"]
    jelly = result.traces["Jelly Splash"]

    # Facebook: low frame rate most of the time.
    assert facebook.median_frame_rate < 15.0
    # ... except around user requests: the peak bins are much higher.
    assert facebook.frame_rate_fps.max() > \
        3.0 * max(facebook.median_frame_rate, 1.0)

    # Jelly Splash: pinned at ~60 fps by its free-running loop.
    assert jelly.median_frame_rate > 55.0
    assert float(np.mean(jelly.frame_rate_fps)) > 55.0

    # ... even though its content rate is far lower (the redundancy
    # that motivates the whole paper).
    assert jelly.mean_redundant_rate > 30.0
    assert float(np.mean(jelly.content_rate_fps)) < 30.0


def test_fig2_trace_binning_kernel(benchmark):
    """Micro-benchmark: turning an event log into a 1 s-binned trace."""
    result = fig2.run(duration_s=DURATION_S, seed=1)
    session_log = result.traces["Jelly Splash"]
    del session_log
    from repro.sim.tracing import EventLog
    log = EventLog()
    for t in np.linspace(0.01, DURATION_S - 0.01, 3600):
        log.append(float(t))
    benchmark(lambda: log.binned_rate(0.0, DURATION_S, 1.0))
