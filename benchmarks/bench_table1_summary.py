"""Table 1 — power-saving effect and display quality, category summary.

Paper values: general apps save 18.6 % (±8.93) with 74.1 % (±15.6)
quality under section-only control; games save more in absolute mW
with 88.5 % (±6.0) quality; touch boosting trades a small slice of the
saving for ~96 % quality in both categories.  The closing claim: "about
230 mW of power reduction and 95 % of quality maintenance on average".
"""

from repro.apps.profile import AppCategory
from repro.experiments import table1

from conftest import publish


def test_table1_reproduction(survey, benchmark):
    result = benchmark.pedantic(lambda: table1.run(survey),
                                rounds=1, iterations=1)
    publish("table1_summary", result.format())

    gen_sec = result.cell(AppCategory.GENERAL, "section")
    gen_tb = result.cell(AppCategory.GENERAL, "section+boost")
    game_sec = result.cell(AppCategory.GAME, "section")
    game_tb = result.cell(AppCategory.GAME, "section+boost")

    # Each cell covers the full category.
    for cell in (gen_sec, gen_tb, game_sec, game_tb):
        assert cell.n_apps == 15

    # Saved power: double-digit percentages for both categories
    # (paper: 18.6 % general; games comparable in % and larger in mW).
    assert 10.0 < gen_sec.saved_power_percent.mean < 30.0
    assert 10.0 < game_sec.saved_power_percent.mean < 35.0
    assert game_sec.saved_power_mw.mean > gen_sec.saved_power_mw.mean

    # Boosting gives back a little power in both categories...
    assert gen_tb.saved_power_percent.mean < \
        gen_sec.saved_power_percent.mean
    assert game_tb.saved_power_percent.mean < \
        game_sec.saved_power_percent.mean
    # ... but keeps the majority of the saving.
    assert gen_tb.saved_power_mw.mean > 0.6 * gen_sec.saved_power_mw.mean
    assert game_tb.saved_power_mw.mean > \
        0.6 * game_sec.saved_power_mw.mean

    # Quality: boosting lifts both categories to ~95 %+ and shrinks
    # the spread (paper: ±15.6 -> ±2.7 general, ±6.0 -> ±1.4 games).
    assert gen_tb.display_quality_percent.mean > 93.0
    assert game_tb.display_quality_percent.mean > 93.0
    assert gen_tb.display_quality_percent.mean > \
        gen_sec.display_quality_percent.mean
    assert game_tb.display_quality_percent.mean > \
        game_sec.display_quality_percent.mean
    assert gen_tb.display_quality_percent.std < \
        gen_sec.display_quality_percent.std
    assert game_tb.display_quality_percent.std < \
        game_sec.display_quality_percent.std

    # The closing average: full system keeps ~95 % quality while
    # saving a triple-digit mW average across all 30 apps.
    all_quality = (gen_tb.display_quality_percent.mean +
                   game_tb.display_quality_percent.mean) / 2.0
    all_saved = (gen_tb.saved_power_mw.mean +
                 game_tb.saved_power_mw.mean) / 2.0
    assert all_quality > 94.0
    assert all_saved > 100.0
