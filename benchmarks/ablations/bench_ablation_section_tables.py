"""Ablation: section-table construction and device level sets.

Two sweeps:

* **construction** — the paper's median-split table vs the naive
  match-the-content-rate rule, on the idle-then-burst workload that
  exposes the V-Sync deadlock;
* **level sets** — the same governor on panels with different discrete
  rates (the paper: "the thresholds should be redefined when the
  available refresh rates are changed"): the stock fixed-60 panel
  (nothing to control), the Galaxy S3's five levels, a coarse
  three-level panel, and a modern LTPO set reaching 1 Hz.
"""

from repro.analysis.tables import format_table
from repro.display.presets import (
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    THREE_LEVEL_PANEL,
)
from repro.sim.session import SessionConfig, run_session

from conftest import DURATION_S, SEED, publish, saved_and_quality

PANELS = {
    "galaxy-s3 (5 levels)": GALAXY_S3_PANEL,
    "three-level": THREE_LEVEL_PANEL,
    "ltpo-120 (8 levels)": LTPO_120_PANEL,
}

APP = "Facebook"


def run_panel(spec, governor):
    base = run_session(SessionConfig(
        app=APP, governor="fixed", duration_s=DURATION_S, seed=SEED,
        panel=spec))
    governed = run_session(SessionConfig(
        app=APP, governor=governor, duration_s=DURATION_S, seed=SEED,
        panel=spec))
    _, rates = governed.panel.rate_history.transitions
    return saved_and_quality(base, governed) + (
        governed.mean_refresh_rate_hz, float(rates.min()))


def sweep():
    return {name: run_panel(spec, "section+boost")
            for name, spec in PANELS.items()}


def test_ablation_panel_level_sets(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["panel", "saved mW", "quality %", "mean refresh Hz",
         "floor reached Hz"],
        [[name, f"{saved:.0f}", f"{100 * quality:.1f}",
          f"{refresh:.1f}", f"{floor:g}"]
         for name, (saved, quality, refresh, floor) in rows.items()],
        title=f"Ablation: refresh-level sets ({APP}, section+boost)")
    publish("ablation_panel_levels", table)

    s3 = rows["galaxy-s3 (5 levels)"]
    coarse = rows["three-level"]
    ltpo = rows["ltpo-120 (8 levels)"]

    # All panels save power at good quality; the section table rebuilt
    # itself for every level set.
    for name, (saved, quality, _, _) in rows.items():
        assert saved > 50.0, name
        assert quality > 0.8, name

    # An idle-heavy app on an LTPO panel parks far below the Galaxy
    # S3's 20 Hz floor — deeper savings from the richer level set.
    # (The *mean* refresh can be higher than the S3's because touch
    # boosting targets the LTPO's 120 Hz maximum; the win is the idle
    # floor.)
    assert ltpo[3] <= 10.0
    assert s3[3] >= 20.0
    assert ltpo[0] > s3[0]

    # The coarse panel still works; its floor (15 Hz) also beats the
    # S3's on this idle-heavy app.
    assert coarse[0] > 0.5 * s3[0]


def test_ablation_naive_vs_section_construction(benchmark):
    """The Equation (1) headroom is the difference between working and
    deadlocking — quantified on the burst workload."""
    from repro.apps.profile import (
        AppCategory, AppProfile, ContentProcess, RenderStyle)

    app = AppProfile(
        name="idle-burst", category=AppCategory.GENERAL,
        idle_content_fps=1.0, active_content_fps=50.0,
        burst_duration_s=8.0,
        content_process=ContentProcess.ANIMATION,
        idle_submit_fps=0.0, render_style=RenderStyle.SCENE,
        touch_events_per_s=0.25, scroll_fraction=0.0)

    def run_pairs():
        out = {}
        for governor in ("naive", "section"):
            base = run_session(SessionConfig(
                app=app, governor="fixed", duration_s=40.0, seed=SEED))
            governed = run_session(SessionConfig(
                app=app, governor=governor, duration_s=40.0, seed=SEED))
            out[governor] = saved_and_quality(base, governed)
        return out

    rows = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    table = format_table(
        ["table construction", "saved mW", "quality %"],
        [[gov, f"{saved:.0f}", f"{100 * quality:.1f}"]
         for gov, (saved, quality) in rows.items()],
        title="Ablation: naive matching vs Equation (1) headroom")
    publish("ablation_table_construction", table)

    # The naive rule "saves" more only by latching low and destroying
    # quality; the section table keeps most of the quality.
    assert rows["naive"][1] < rows["section"][1] - 0.1
    assert rows["section"][1] > 0.8
