"""Extension benchmarks: OLED emission orthogonality and touch latency.

* **OLED emission** — the Galaxy S3 panel is AMOLED, so emission power
  depends on displayed content.  The paper's refresh-rate savings are
  *orthogonal* to the content-colour savings of its related work
  (Chameleon, FOCUS): refresh control leaves the emission component
  unchanged while cutting the scan/compose/render components.  Both
  directions are checked: dark vs bright content changes emission, and
  governing the refresh rate does not.
* **Touch latency** — an honest neutral result: because panel mode
  switches land at frame boundaries, the *first* response frame after
  a touch is about as fast under every governor; boosting pays off in
  sustained burst tracking (quality), not first response.
"""

import numpy as np

from repro.analysis.latency import session_touch_latency
from repro.analysis.tables import format_table
from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.power.oled import OledModel
from repro.sim.session import SessionConfig, run_session

from conftest import DURATION_S, SEED, publish


def _themed_app(name: str, style: RenderStyle) -> AppProfile:
    return AppProfile(
        name=name, category=AppCategory.GENERAL,
        idle_content_fps=5.0, active_content_fps=20.0,
        content_process=ContentProcess.POISSON,
        idle_submit_fps=0.0, render_style=style,
        touch_events_per_s=0.2, scroll_fraction=0.2)


def oled_sweep():
    rows = {}
    # Dark UI (sprites on near-black) vs bright UI (full-screen video
    # noise averages mid-grey) — the content-colour axis.
    for label, style in (("dark (sprites)", RenderStyle.SPRITES),
                         ("bright (video)", RenderStyle.VIDEO)):
        for governor in ("fixed", "section+boost"):
            result = run_session(SessionConfig(
                app=_themed_app(f"themed-{label}", style),
                governor=governor, duration_s=DURATION_S, seed=SEED,
                track_oled=True))
            emission = result.oled_tracker.mean_emission_mw(
                0.0, DURATION_S)
            total = result.power_report().mean_power_mw
            rows[(label, governor)] = (emission, total)
    return rows


def test_extension_oled_orthogonality(benchmark):
    rows = benchmark.pedantic(oled_sweep, rounds=1, iterations=1)
    table = format_table(
        ["content theme", "governor", "emission mW", "total mW"],
        [[label, gov, f"{emission:.0f}", f"{total:.0f}"]
         for (label, gov), (emission, total) in rows.items()],
        title="Extension: OLED emission vs refresh control")
    publish("extension_oled", table)

    # Content-colour axis: bright content emits far more than dark.
    dark = rows[("dark (sprites)", "fixed")][0]
    bright = rows[("bright (video)", "fixed")][0]
    assert bright > 3.0 * dark

    # Refresh-control axis: governing barely moves emission (< 10 %)
    # while cutting total power — the two techniques compose.
    for label in ("dark (sprites)", "bright (video)"):
        e_fixed = rows[(label, "fixed")][0]
        e_gov = rows[(label, "section+boost")][0]
        assert abs(e_gov - e_fixed) < 0.1 * max(e_fixed, 1.0), label
        assert rows[(label, "section+boost")][1] < \
            rows[(label, "fixed")][1], label

    # Sanity on the model itself: white >> black.
    model = OledModel()
    assert model.full_white_mw > 20.0 * model.full_black_mw


def latency_sweep():
    rows = {}
    for governor in ("fixed", "section", "section+boost"):
        result = run_session(SessionConfig(
            app="Facebook", governor=governor, duration_s=60.0,
            seed=SEED))
        rows[governor] = session_touch_latency(result)
    return rows


def test_extension_touch_latency(benchmark):
    rows = benchmark.pedantic(latency_sweep, rounds=1, iterations=1)
    table = format_table(
        ["governor", "touches", "answered", "mean ms", "p95 ms"],
        [[gov, f"{r.touches}", f"{r.answered}",
          f"{1e3 * r.mean_s:.0f}" if r.answered else "-",
          f"{1e3 * r.p95_s:.0f}" if r.answered else "-"]
         for gov, r in rows.items()],
        title="Extension: touch-to-display latency per governor "
              "(Facebook)")
    publish("extension_latency", table)

    answered = {gov: r for gov, r in rows.items() if r.answered}
    assert len(answered) == 3
    means = np.array([r.mean_s for r in answered.values()])
    # First-response latency is bounded and comparable across
    # governors: the worst governor is within ~120 ms of the best.
    assert means.max() < 0.3
    assert means.max() - means.min() < 0.12
