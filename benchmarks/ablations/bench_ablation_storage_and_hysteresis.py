"""Ablations: previous-frame storage format and hysteresis damping.

* **storage** — the paper stores the full previous frame in the double
  buffer; storing only the grid samples yields identical metering
  verdicts at a fraction of the copy bandwidth (the trade-off is one
  warm-up frame when the grid is reconfigured at runtime);
* **hysteresis** — the extension governor damps downward switches:
  fewer panel mode changes for a small power give-back at equal or
  better quality.
"""

from repro.analysis.tables import format_table
from repro.core.content_rate import MeterConfig
from repro.sim.session import SessionConfig, run_session

from conftest import (
    ABLATION_APPS,
    DURATION_S,
    SEED,
    publish,
    run_pair,
    saved_and_quality,
)


def storage_sweep():
    rows = {}
    for store_full in (True, False):
        # A 1K-sample grid keeps the bandwidth contrast meaningful at
        # the scaled simulation resolution (at native 720x1280 the
        # paper's 9K grid covers ~1 % of the frame; on the 90x160
        # simulation buffer it covers 64 %, which would mute the
        # ablation).  Scene changes are large, so 1K samples meter
        # exactly like the full comparison here.
        result = run_session(SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=DURATION_S, seed=SEED,
            meter=MeterConfig(sample_count=1024,
                              store_full_frames=store_full)))
        rows[store_full] = (result.meter.total_meaningful,
                            result.meter.total_frames,
                            result.meter.bytes_copied)
    return rows


def test_ablation_storage_format(benchmark):
    rows = benchmark.pedantic(storage_sweep, rounds=1, iterations=1)
    table = format_table(
        ["storage", "meaningful frames", "frames", "bytes copied"],
        [["full frames (paper)", f"{rows[True][0]}", f"{rows[True][1]}",
          f"{rows[True][2]:,}"],
         ["grid samples only", f"{rows[False][0]}", f"{rows[False][1]}",
          f"{rows[False][2]:,}"]],
        title="Ablation: previous-frame storage format")
    publish("ablation_storage", table)

    # Identical metering outcome...
    assert rows[True][0] == rows[False][0]
    assert rows[True][1] == rows[False][1]
    # ... at a large bandwidth saving.
    assert rows[False][2] < 0.15 * rows[True][2]


def hysteresis_sweep():
    rows = {}
    for app in ABLATION_APPS:
        for governor in ("section+boost", "section+hysteresis"):
            base, governed = run_pair(app, governor)
            saved, quality = saved_and_quality(base, governed)
            rows[(app, governor)] = (saved, quality,
                                     governed.panel.rate_switches)
    return rows


def test_ablation_hysteresis(benchmark):
    rows = benchmark.pedantic(hysteresis_sweep, rounds=1, iterations=1)
    table = format_table(
        ["app", "governor", "saved mW", "quality %", "rate switches"],
        [[app, gov, f"{saved:.0f}", f"{100 * quality:.1f}",
          f"{switches}"]
         for (app, gov), (saved, quality, switches) in rows.items()],
        title="Ablation: hysteresis damping of downward switches")
    publish("ablation_hysteresis", table)

    for app in ABLATION_APPS:
        plain = rows[(app, "section+boost")]
        damped = rows[(app, "section+hysteresis")]
        # Fewer (or equal) panel mode switches...
        assert damped[2] <= plain[2], app
        # ... without losing quality...
        assert damped[1] >= plain[1] - 0.02, app
        # ... for a bounded power give-back.
        assert damped[0] >= plain[0] - 60.0, app
