"""Shared helpers for the ablation benchmarks.

Each ablation sweeps one design choice DESIGN.md calls out and asserts
the direction of the trade-off the paper's design implies.  Sessions
here are shorter than the figure benchmarks (30 s, two representative
apps) because each sweep runs several configurations.
"""

from __future__ import annotations

import pathlib

from repro.sim.session import SessionConfig, run_session

OUT_DIR = pathlib.Path(__file__).parent.parent / "out"

#: One idle-heavy general app and one free-running game: the two
#: regimes every trade-off plays out differently in.
ABLATION_APPS = ("Facebook", "Jelly Splash")

DURATION_S = 30.0
SEED = 11


def publish(name: str, text: str) -> None:
    """Print an ablation table and save it under out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def run_pair(app: str, governor: str, **overrides):
    """A (fixed baseline, governed) session pair for one app."""
    base = run_session(SessionConfig(app=app, governor="fixed",
                                     duration_s=DURATION_S, seed=SEED))
    governed = run_session(SessionConfig(app=app, governor=governor,
                                         duration_s=DURATION_S,
                                         seed=SEED, **overrides))
    return base, governed


def saved_and_quality(base, governed):
    """(saved mW, quality fraction) for one session pair."""
    from repro.core.quality import quality_vs_baseline
    saved = (base.power_report().mean_power_mw -
             governed.power_report().mean_power_mw)
    quality = quality_vs_baseline(governed.mean_content_rate_fps,
                                  base.mean_content_rate_fps)
    return saved, quality
