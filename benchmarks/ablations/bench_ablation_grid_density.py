"""Ablation: metering-grid density beyond Figure 6's five points.

Sweeps a finer range of pixel budgets against the moving-dots
stressor, mapping the accuracy/cost frontier the paper samples at
2K/4K/9K/36K/921K.  Shape: error is non-increasing in the budget and
hits zero at the budget whose cell size first drops below the dot
size; cost grows with the budget.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.grid import GridComparator, GridSpec
from repro.experiments import fig6

from conftest import publish

BUDGETS = (1_000, 2_304, 4_080, 9_216, 16_000, 36_864, 100_000)


def accuracy_sweep():
    return fig6.run_accuracy(duration_s=8.0, seed=3,
                             budgets={f"{b}": b for b in BUDGETS})


def test_ablation_grid_density_accuracy(benchmark):
    acc = benchmark.pedantic(accuracy_sweep, rounds=1, iterations=1)
    table = format_table(
        ["budget", "grid", "cell px", "error %"],
        [[a.label, f"{a.grid_width}x{a.grid_height}",
          f"{720 // a.grid_width}",
          f"{100 * a.error_rate:.1f}"] for a in acc],
        title="Ablation: grid density vs accuracy (moving-dots "
              "stressor)")
    publish("ablation_grid_density", table)

    errors = [a.error_rate for a in acc]
    # Non-increasing error as the budget grows (small stochastic
    # wobble allowed between adjacent sparse budgets).
    for lo, hi in zip(errors, errors[1:]):
        assert hi <= lo + 0.05
    # The sparsest budget misses dots; the paper's 9K point and denser
    # are exact (12 px dots vs <= 10 px cells).
    assert errors[0] > 0.05
    assert all(e == 0.0 for a, e in zip(acc, errors)
               if a.sample_count >= 9_216)


def test_ablation_grid_density_cost(benchmark):
    """Cost at a mid-density budget not in the paper's set."""
    first, _ = fig6.make_frame_pair(seed=1)
    duplicate = first.copy()
    grid = GridSpec.from_sample_count(first.shape[:2], 16_000)
    comparator = GridComparator(grid)
    benchmark(lambda: comparator.frames_equal(duplicate, first))


def test_ablation_cost_scales_with_samples():
    costs = fig6.run_cost(repeats=15,
                          budgets={f"{b}": b for b in BUDGETS})
    medians = np.array([c.median_compare_s for c in costs])
    samples = np.array([c.sample_count for c in costs])
    # Cost is monotone in samples across a 100x budget range (allow
    # noise between adjacent points by checking the ends).
    assert medians[-1] > medians[0]
    # And roughly linear at the top end: 100K vs 9K within a loose
    # factor band of the sample ratio.
    ratio_cost = medians[-1] / medians[3]
    ratio_samples = samples[-1] / samples[3]
    assert 0.15 * ratio_samples < ratio_cost < 6.0 * ratio_samples
