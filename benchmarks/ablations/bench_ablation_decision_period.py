"""Ablation: governor decision period and content-rate window.

Two time constants control the governor's reactivity:

* the **decision period** — how often the section table is consulted;
* the **content-rate window** — how much history each measurement
  averages.

Short settings track bursts tightly (quality up, a little saving
lost); long settings lag (power down at quality's expense).  With
touch boosting enabled, the boost masks most of the window's quality
cost — which is exactly why the paper can afford a simple 1 s window.
"""

from repro.analysis.tables import format_table

from conftest import publish, run_pair, saved_and_quality

PERIODS_S = (0.05, 0.2, 0.5, 1.0)
WINDOWS_S = (0.5, 1.0, 2.0)

APP = "Jelly Splash"


def sweep():
    rows = {}
    for period in PERIODS_S:
        base, governed = run_pair(APP, "section",
                                  decision_period_s=period)
        rows[("period", period)] = saved_and_quality(base, governed) + (
            governed.panel.rate_switches,)
    for window in WINDOWS_S:
        base, governed = run_pair(APP, "section",
                                  content_window_s=window)
        rows[("window", window)] = saved_and_quality(base, governed) + (
            governed.panel.rate_switches,)
    return rows


def test_ablation_decision_period_and_window(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["knob", "value (s)", "saved mW", "quality %", "rate switches"],
        [[knob, f"{value:g}", f"{rows[(knob, value)][0]:.0f}",
          f"{100 * rows[(knob, value)][1]:.1f}",
          f"{rows[(knob, value)][2]}"]
         for knob, value in rows],
        title=f"Ablation: governor time constants ({APP}, section-only)")
    publish("ablation_decision_period", table)

    # Faster decisions switch the panel more often.
    assert rows[("period", 0.05)][2] >= rows[("period", 1.0)][2]

    # A longer window reacts more slowly: quality can only go down
    # (or stay) as the window stretches.
    assert rows[("window", 0.5)][1] >= rows[("window", 2.0)][1] - 0.03

    # Every configuration still saves substantial power on the
    # free-running game.
    for key, (saved, quality, _) in rows.items():
        assert saved > 100.0, key
        assert quality > 0.5, key
