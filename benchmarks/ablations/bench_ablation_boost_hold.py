"""Ablation: touch-boost hold duration.

The hold time trades power for responsiveness.  Too short and the
section governor takes over before its content-rate window has seen
the unclipped burst (quality regresses toward section-only); too long
and the panel camps at 60 Hz after every touch (the saving erodes).
The paper does not publish its hold value; the default here (1 s,
matching the meter window) sits at the knee this sweep exposes.
"""

from repro.analysis.tables import format_table

from conftest import ABLATION_APPS, publish, run_pair, saved_and_quality

HOLDS_S = (0.25, 0.5, 1.0, 2.0, 4.0)


def sweep():
    rows = {}
    for app in ABLATION_APPS:
        for hold in HOLDS_S:
            base, governed = run_pair(app, "section+boost",
                                      boost_hold_s=hold)
            rows[(app, hold)] = saved_and_quality(base, governed)
    return rows


def test_ablation_boost_hold(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["app", "hold (s)", "saved mW", "quality %"],
        [[app, f"{hold:g}", f"{rows[(app, hold)][0]:.0f}",
          f"{100 * rows[(app, hold)][1]:.1f}"]
         for app in ABLATION_APPS for hold in HOLDS_S],
        title="Ablation: touch-boost hold duration")
    publish("ablation_boost_hold", table)

    for app in ABLATION_APPS:
        saved = [rows[(app, h)][0] for h in HOLDS_S]
        quality = [rows[(app, h)][1] for h in HOLDS_S]
        # Power: longer holds never save more (monotone cost up to
        # stochastic jitter of a few mW).
        assert saved[0] >= saved[-1] - 5.0, app
        # Quality: the longest hold is at least as good as the
        # shortest.
        assert quality[-1] >= quality[0] - 0.02, app
        # Even the longest hold still saves meaningful power.
        assert saved[-1] > 25.0, app
