"""Extension benchmark: content-significance filtering.

A tiny repeating update — a spinner, a blinking cursor — is real
content to the paper's meter, so it holds the refresh rate up forever.
The ``min_changed_cells`` extension discounts changes smaller than a
cell-count threshold, letting the panel drop to its floor while the
spinner keeps spinning.  This benchmark quantifies the win on
spinner-class content and the *risk* on content whose rate exceeds the
floor: filtered-away content is no longer protected by the governor.
"""

from repro.analysis.tables import format_table
from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.core.content_rate import MeterConfig
from repro.core.quality import quality_vs_baseline
from repro.sim.session import SessionConfig, run_session

from conftest import DURATION_S, SEED, publish

#: Coarse meter grid for this study: 36x64 cells on the scaled buffer,
#: so the small-region spinner touches a bounded handful of cells.
SAMPLES = 2304

#: Cell threshold above the spinner's footprint but far below any real
#: scene change (which repaints hundreds of cells).
THRESHOLD = 60


def _spinner_app(rate_fps: float) -> AppProfile:
    return AppProfile(
        name=f"spinner-{rate_fps:g}", category=AppCategory.GENERAL,
        idle_content_fps=rate_fps, active_content_fps=rate_fps,
        content_process=ContentProcess.ANIMATION,
        idle_submit_fps=0.0,
        render_style=RenderStyle.SMALL_REGION,
        touch_events_per_s=0.0, scroll_fraction=0.0)


def sweep():
    rows = {}
    for rate in (12.0, 28.0):
        app = _spinner_app(rate)
        base = run_session(SessionConfig(
            app=app, governor="fixed", duration_s=DURATION_S,
            seed=SEED, meter=MeterConfig(sample_count=SAMPLES)))
        for threshold in (1, THRESHOLD):
            governed = run_session(SessionConfig(
                app=app, governor="section", duration_s=DURATION_S,
                seed=SEED,
                meter=MeterConfig(sample_count=SAMPLES,
                                  min_changed_cells=threshold)))
            saved = (base.power_report().mean_power_mw -
                     governed.power_report().mean_power_mw)
            quality = quality_vs_baseline(
                governed.mean_content_rate_fps,
                base.mean_content_rate_fps)
            rows[(rate, threshold)] = (
                saved, quality, governed.mean_refresh_rate_hz)
    return rows


def test_extension_significance_filter(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["spinner fps", "min cells", "saved mW", "quality %",
         "refresh Hz"],
        [[f"{rate:g}", f"{threshold}", f"{saved:.0f}",
          f"{100 * quality:.1f}", f"{refresh:.1f}"]
         for (rate, threshold), (saved, quality, refresh)
         in rows.items()],
        title="Extension: significance filtering of tiny updates")
    publish("extension_significance", table)

    # 12 fps spinner: unfiltered holds 24 Hz; filtered drops to the
    # 20 Hz floor for extra savings at NO quality cost (12 < 20 — every
    # spinner frame still displays).
    plain_12 = rows[(12.0, 1)]
    filtered_12 = rows[(12.0, THRESHOLD)]
    assert filtered_12[2] < plain_12[2]          # lower refresh
    assert filtered_12[0] > plain_12[0] + 5.0    # more saving
    assert filtered_12[1] > 0.95                 # no quality cost

    # 28 fps spinner: the filter now *hides* content faster than the
    # floor — the refresh drops below the content rate and frames are
    # lost.  The risk, quantified.
    plain_28 = rows[(28.0, 1)]
    filtered_28 = rows[(28.0, THRESHOLD)]
    assert filtered_28[2] < plain_28[2]
    assert filtered_28[1] < plain_28[1] - 0.1    # real quality loss
