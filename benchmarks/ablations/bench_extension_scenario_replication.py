"""Extension benchmarks: multi-app scenarios and seed replication.

* **scenario** — the governor must re-adapt when the workload changes
  under it: within each segment of a messenger → game → feed scenario
  it reaches the same operating point per-app sessions would, and the
  scenario total is consistent with its parts;
* **replication** — the paper's ± figures come from repeated runs; the
  replicated comparison shows the game's saving is statistically real
  (bootstrap CI excludes zero) with seed-to-seed spread far below the
  mean.
"""

from repro.analysis.tables import format_table
from repro.experiments.replication import replicate_comparison
from repro.sim.scenario import (
    ScenarioConfig,
    ScenarioSegment,
    run_scenario,
)

from conftest import SEED, publish

SEGMENTS = (
    ScenarioSegment("KakaoTalk", 20.0),
    ScenarioSegment("Jelly Splash", 20.0),
    ScenarioSegment("Facebook", 20.0),
)


def scenario_pair():
    base = run_scenario(ScenarioConfig(segments=SEGMENTS,
                                       governor="fixed", seed=SEED))
    governed = run_scenario(ScenarioConfig(segments=SEGMENTS,
                                           governor="section+boost",
                                           seed=SEED))
    return base, governed


def test_extension_scenario(benchmark):
    base, governed = benchmark.pedantic(scenario_pair, rounds=1,
                                        iterations=1)
    rows = []
    savings = []
    for i, segment in enumerate(governed.segments):
        b = base.segment_power(base.segments[i]).mean_power_mw
        g = governed.segment_power(segment).mean_power_mw
        quality = governed.segment_quality(i, base)
        savings.append(b - g)
        rows.append([segment.profile.name, f"{b:.0f}", f"{b - g:.0f}",
                     f"{100 * quality:.1f}"])
    publish("extension_scenario", format_table(
        ["segment", "baseline mW", "saved mW", "quality %"], rows,
        title="Extension: messenger -> game -> feed scenario"))

    # Every segment saves; the free-running game saves the most.
    assert all(s > 30.0 for s in savings)
    assert savings[1] == max(savings)

    # Per-segment energies sum to the scenario total exactly.
    total = governed.power_report().energy_mj
    summed = sum(governed.segment_power(s).energy_mj
                 for s in governed.segments)
    assert abs(total - summed) < 1e-6 * total

    # Quality holds through the app switches.
    for i in range(len(SEGMENTS)):
        assert governed.segment_quality(i, base) > 0.85

    # The governor visibly re-adapts: the game segment runs a higher
    # mean refresh than the messenger segment.
    messenger = governed.panel.rate_history.mean(2.0, 20.0)
    game = governed.panel.rate_history.mean(22.0, 40.0)
    assert game > messenger + 3.0


def test_extension_replication(benchmark):
    comparison = benchmark.pedantic(
        lambda: replicate_comparison("Jelly Splash",
                                     seeds=(1, 2, 3, 4, 5),
                                     duration_s=30.0),
        rounds=1, iterations=1)
    low, high = comparison.saving_confidence_interval()
    publish("extension_replication", format_table(
        ["app", "seeds", "saved mW", "quality %", "95% CI on saving"],
        [[comparison.app, f"{len(comparison.seeds)}",
          str(comparison.saved_stats), str(comparison.quality_stats),
          f"[{low:.0f}, {high:.0f}] mW"]],
        title="Extension: multi-seed replication"))

    # The saving is statistically real and the spread is modest
    # relative to the mean (the paper's tight ± figures).
    assert comparison.saving_is_significant()
    stats = comparison.saved_stats
    assert stats.mean > 150.0
    assert stats.std < 0.5 * stats.mean
    # Quality is consistently high across seeds.
    assert min(comparison.quality) > 0.9
