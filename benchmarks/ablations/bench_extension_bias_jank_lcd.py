"""Extension benchmarks: biased tables, jank structure, LCD calibration.

* **biased section table** — the "smooth mode" knob: shifting every
  section one level up buys fewer dropped frames for a bounded extra
  panel cost, without touching touch boosting;
* **jank** — the run structure of drops: section-only control produces
  multi-frame freezes around touches; boosting eliminates nearly all
  episodes (a stronger statement than the average-quality ratio);
* **LCD vs AMOLED calibration** — the same governor saves fewer
  milliwatts on a backlight-dominated LCD device, a deployment caveat
  the paper's single-device evaluation cannot show.
"""

from repro.analysis.jank import session_jank
from repro.analysis.tables import format_table
from repro.core.section_table import SectionTable
from repro.power.calibration import (
    galaxy_s3_calibration,
    lcd_phone_calibration,
)
from repro.power.model import PowerModel
from repro.sim.session import SessionConfig, run_session

from conftest import DURATION_S, SEED, publish

GS3_RATES = (20.0, 24.0, 30.0, 40.0, 60.0)


def test_extension_biased_table(benchmark):
    """Every biased lookup is at least the paper table's — quantified
    over a dense content-rate sweep, plus merged-section structure."""

    def sweep():
        plain = SectionTable.from_rates(GS3_RATES)
        rows = []
        for steps in (0, 1, 2):
            table = plain.biased(steps)
            mean_rate = sum(table.lookup(c / 2.0)
                            for c in range(0, 120)) / 120.0
            rows.append((steps, len(table.sections), mean_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("extension_biased_table", format_table(
        ["bias steps", "sections", "mean selected Hz (0-60 fps sweep)"],
        [[f"{s}", f"{n}", f"{m:.1f}"] for s, n, m in rows],
        title="Extension: biased (quality-priority) section tables"))
    means = [m for _, _, m in rows]
    assert means[0] < means[1] < means[2]
    sections = [n for _, n, _ in rows]
    assert sections[0] >= sections[1] >= sections[2]


def test_extension_jank_structure(benchmark):
    def sweep():
        out = {}
        for governor in ("fixed", "section", "section+boost"):
            result = run_session(SessionConfig(
                app="Jelly Splash", governor=governor,
                duration_s=DURATION_S, seed=SEED))
            out[governor] = session_jank(result)
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("extension_jank", format_table(
        ["governor", "lost %", "jank episodes/min", "worst run"],
        [[gov, f"{100 * r.lost_fraction:.1f}",
          f"{r.episodes_per_minute:.2f}", f"{r.worst_run}"]
         for gov, r in reports.items()],
        title="Extension: stutter structure (Jelly Splash)"))

    fixed = reports["fixed"]
    section = reports["section"]
    boosted = reports["section+boost"]
    # Fixed 60 Hz: near-zero loss.  Section-only: real freezes around
    # touches.  Boosting: episodes nearly eliminated.
    assert fixed.lost_fraction < 0.05
    assert section.total_lost >= boosted.total_lost
    assert len(boosted.episodes) <= max(1, len(section.episodes))


def test_extension_lcd_vs_amoled_calibration(benchmark):
    def sweep():
        base = run_session(SessionConfig(
            app="Facebook", governor="fixed", duration_s=DURATION_S,
            seed=SEED))
        governed = run_session(SessionConfig(
            app="Facebook", governor="section+boost",
            duration_s=DURATION_S, seed=SEED))
        out = {}
        for name, cal in (("amoled (galaxy-s3)",
                           galaxy_s3_calibration()),
                          ("lcd phone", lcd_phone_calibration())):
            model = PowerModel(cal)
            p_base = base.power_report(model).mean_power_mw
            p_gov = governed.power_report(model).mean_power_mw
            out[name] = (p_base, p_base - p_gov,
                         100.0 * (p_base - p_gov) / p_base)
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    publish("extension_lcd", format_table(
        ["calibration", "baseline mW", "saved mW", "saved %"],
        [[name, f"{b:.0f}", f"{s:.0f}", f"{p:.1f}"]
         for name, (b, s, p) in rows.items()],
        title="Extension: the same governor on AMOLED vs LCD "
              "calibrations (Facebook)"))

    amoled = rows["amoled (galaxy-s3)"]
    lcd = rows["lcd phone"]
    # LCD: higher constant floor, smaller rate-dependent slice -> the
    # governor saves less in both mW and percent.
    assert lcd[1] < amoled[1]
    assert lcd[2] < amoled[2]
    assert lcd[1] > 40.0  # but still worthwhile
