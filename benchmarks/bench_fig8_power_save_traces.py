"""Figure 8 — power saved over time, Facebook and Jelly Splash.

Paper values (reconstructed; see DESIGN.md on the OCR-dropped zeros):
Facebook saves ~150 mW with section control and ~135 mW with boosting;
Jelly Splash ~500 mW and ~330 mW.  Shapes asserted here:

* both apps save power under both methods;
* Jelly Splash (60 fps redundant loop) saves several times more than
  Facebook;
* touch boosting gives back part of the saving on both apps but keeps
  most of it.
"""

from repro.experiments import fig8

from conftest import publish

DURATION_S = 60.0


def test_fig8_reproduction(benchmark):
    result = benchmark.pedantic(
        lambda: fig8.run(duration_s=DURATION_S, seed=1),
        rounds=1, iterations=1)
    publish("fig8_power_save_traces", result.format())

    fb_sec = result.traces[("Facebook", "section")]
    fb_tb = result.traces[("Facebook", "section+boost")]
    js_sec = result.traces[("Jelly Splash", "section")]
    js_tb = result.traces[("Jelly Splash", "section+boost")]

    # Everybody saves.
    for trace in (fb_sec, fb_tb, js_sec, js_tb):
        assert trace.mean_saved_mw > 50.0

    # Facebook section-only: on the order of 150 mW.
    assert 80.0 < fb_sec.mean_saved_mw < 220.0

    # Jelly Splash saves a multiple of Facebook (paper: "much larger
    # ... since Jelly Splash keeps a high frame rate of almost 60 fps
    # regardless of the content rate").
    assert js_sec.mean_saved_mw > 1.8 * fb_sec.mean_saved_mw

    # Touch boosting gives back some saving, but keeps the majority.
    assert fb_tb.mean_saved_mw <= fb_sec.mean_saved_mw + 5.0
    assert js_tb.mean_saved_mw <= js_sec.mean_saved_mw + 5.0
    assert fb_tb.mean_saved_mw > 0.5 * fb_sec.mean_saved_mw
    assert js_tb.mean_saved_mw > 0.5 * js_sec.mean_saved_mw

    # The per-bin trace really varies (refresh switches + Monsoon
    # noise), like the paper's jittery saved-power curves.
    assert fb_sec.std_saved_mw > 0.0
