"""Figure 10 — estimated vs actual content rate per application.

Paper shapes asserted here:

* with boosting, the estimated content rate is approximately the
  actual one for every app;
* without boosting the content rate is underestimated around touches;
* the "80 % of applications" dropped-frame statistics: section-only
  drops a user-noticeable few fps; boosting drops well under the
  paper's virtually-no-degradation bars (0.7 / 1.3 fps).
"""

from repro.apps.profile import AppCategory
from repro.experiments import fig10

from conftest import publish


def test_fig10_reproduction(survey, benchmark):
    result = benchmark.pedantic(lambda: fig10.run(survey),
                                rounds=1, iterations=1)
    publish("fig10_content_rate_effect", result.format())

    # Estimates never exceed the actual (V-Sync can only lose frames).
    for row in result.rows:
        for method in ("section", "section+boost"):
            assert row.estimated_fps[method] <= row.actual_fps + 0.5

    # Boosting estimates ~= actual for every app (paper: "approximately
    # the same as the actual content rate").
    for row in result.rows:
        assert row.dropped_fps("section+boost") <= \
            row.dropped_fps("section") + 0.2, row.app_name

    # 80th-percentile dropped frames: section-only visible, boosting
    # negligible (paper bars: 2.9/3.8 section, 0.7/1.3 boosted).
    for category, section_cap, boost_cap in (
            (AppCategory.GENERAL, 5.0, 1.0),
            (AppCategory.GAME, 8.0, 2.0)):
        section_80 = result.dropped_fps_80th(category, "section")
        boost_80 = result.dropped_fps_80th(category, "section+boost")
        assert section_80 < section_cap, category
        assert boost_80 < boost_cap, category
        assert boost_80 <= section_80 + 1e-9, category
