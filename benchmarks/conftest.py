"""Shared fixtures and helpers for the benchmark suite.

Every ``bench_*`` file regenerates one of the paper's tables/figures:
it prints the same rows/series the paper reports, saves them under
``benchmarks/out/``, asserts the qualitative *shape* of the result
(who wins, by roughly what factor, where the crossovers fall), and
times a representative kernel with pytest-benchmark.

The 30-app survey behind Figures 3/9/10/11 and Table 1 is run once per
pytest process and shared through :mod:`repro.experiments.survey`'s
in-process cache.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.survey import SurveyConfig, run_survey

#: The survey configuration every survey-based benchmark shares.
#: 45 s per session is enough for stable means (the paper uses ~180 s
#: on hardware); seed 1 matches the calibration runs in EXPERIMENTS.md.
BENCH_SURVEY = SurveyConfig(duration_s=45.0, seed=1)

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def survey():
    """The shared 30-app x 3-governor sweep."""
    return run_survey(BENCH_SURVEY)


def publish(name: str, text: str) -> None:
    """Print a figure/table reproduction and save it to out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
