"""Infrastructure benchmarks: the simulator's own performance.

Not a paper artifact — a regression net for the library.  The survey
behind Figures 3/9/10/11 runs ~90 sessions; these benches pin the cost
of the hot paths so a change that makes sessions 10x slower fails
loudly here rather than silently doubling the benchmark suite's wall
time.
"""

import numpy as np

from repro.core.content_rate import ContentRateMeter, MeterConfig
from repro.graphics.framebuffer import Framebuffer
from repro.sim.engine import Simulator
from repro.sim.session import SessionConfig, run_session


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost of the event core."""

    def run_events():
        sim = Simulator()
        count = [0]

        def tick(s):
            count[0] += 1
            if count[0] < 10_000:
                s.call_after(0.001, tick)

        sim.call_after(0.001, tick)
        sim.run_until(100.0)
        return count[0]

    assert benchmark(run_events) == 10_000


def test_meter_frame_update_throughput(benchmark):
    """Per-frame metering cost at the paper's 9K operating point on
    the scaled simulation framebuffer."""
    fb = Framebuffer(90, 160)
    meter = ContentRateMeter(fb, MeterConfig(sample_count=9216))
    frames = [np.full(fb.shape, v % 256, dtype=np.uint8)
              for v in range(32)]
    state = {"i": 0, "t": 0.0}

    def one_update():
        state["i"] = (state["i"] + 1) % len(frames)
        state["t"] += 1e-3
        fb.write(frames[state["i"]], state["t"])

    benchmark(one_update)
    assert meter.total_frames > 0


def test_session_wall_time_per_simulated_second(benchmark):
    """A full governed session should simulate much faster than real
    time (the survey depends on it)."""

    def run_one():
        return run_session(SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=10.0, seed=1))

    result = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert result.duration_s == 10.0
    # 10 simulated seconds of the heaviest app in well under 2 s.
    assert benchmark.stats.stats.median < 2.0
