"""Parallel batch scaling — serial vs pooled execution of one sweep.

No paper figure — this benchmarks the execution engine added for the
reproduction itself (see docs/performance.md).  Shapes asserted:

* a pooled run returns *byte-identical* summaries to the serial run —
  the determinism guarantee that makes ``--workers`` safe to use for
  every figure;
* failure records stay per-config under parallelism (a poisoned app
  name costs exactly one slot);
* the merged batch-level telemetry equals the input-order fold of the
  per-session blocks.

Wall-clock scaling itself is *not* asserted — this suite runs on
whatever machine hosts it (often a 1-2 core CI box where the pool
can't win); the scaling numbers live in ``repro bench`` and its
committed ``BENCH_baseline.json``, gated separately in CI.  The table
published here records the observed timings for the curious.
"""

import json
import multiprocessing
import time

from repro.analysis.tables import format_table
from repro.sim.batch import (
    batch_telemetry_summary,
    is_failure_record,
    run_batch,
)
from repro.sim.session import SessionConfig
from repro.telemetry import TelemetryConfig

from conftest import publish

APPS = ("Facebook", "Auction", "KakaoTalk", "Naver")


def _configs(n=8, duration_s=10.0):
    return [SessionConfig(app=APPS[i % len(APPS)],
                          governor="section+boost",
                          duration_s=duration_s, seed=i,
                          telemetry=TelemetryConfig(
                              profile_spans=False))
            for i in range(n)]


def test_parallel_scaling_reproduction(benchmark):
    configs = _configs()
    workers = min(multiprocessing.cpu_count(), 4)

    t0 = time.perf_counter()
    serial = run_batch(configs, workers=1)
    serial_s = time.perf_counter() - t0

    def pooled():
        t0 = time.perf_counter()
        results = run_batch(configs, workers=workers,
                            mp_context="fork")
        return results, time.perf_counter() - t0

    (parallel, parallel_s) = benchmark.pedantic(pooled, rounds=1,
                                                iterations=1)

    # The determinism guarantee, end to end.
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)
    assert not any(is_failure_record(r) for r in parallel)

    merged = batch_telemetry_summary(parallel)
    assert merged["sessions_with_telemetry"] == len(configs)
    assert merged["events"]["total"] == sum(
        entry["telemetry"]["events"]["total"] for entry in serial)

    rows = [["serial (workers=1)", f"{serial_s:.2f}", "1.00"],
            [f"pooled (workers={workers})", f"{parallel_s:.2f}",
             f"{serial_s / parallel_s:.2f}" if parallel_s else "-"]]
    publish("parallel_scaling", format_table(
        ["execution", "wall s", "speedup x"], rows,
        title=f"Parallel batch scaling: {len(configs)} sessions on "
              f"{multiprocessing.cpu_count()} cpu(s) "
              f"(identical output asserted)"))


def test_poisoned_config_costs_one_slot_under_parallelism():
    configs = _configs(n=4, duration_s=5.0)
    configs[1] = SessionConfig(app="NoSuchApp", duration_s=5.0)
    results = run_batch(configs, workers=2, mp_context="fork")
    assert [is_failure_record(r) for r in results] == \
        [False, True, False, False]
    assert results[1]["error_type"] == "WorkloadError"
