"""Figure 9 — per-application power saving across the 30-app catalog.

Paper shapes asserted here:

* games save substantially more than general applications on average
  (paper: ~290 mW vs ~120 mW);
* the named general-app redundancy offenders (CGV, Daum Maps) save
  game-like amounts;
* touch boosting costs a small give-back in both categories (paper:
  ~16 mW general, ~30 mW games), far smaller than the saving itself.
"""

from repro.apps.profile import AppCategory
from repro.experiments import fig9

from conftest import publish


def test_fig9_reproduction(survey, benchmark):
    result = benchmark.pedantic(lambda: fig9.run(survey),
                                rounds=1, iterations=1)
    publish("fig9_power_survey", result.format())

    general_mean = result.category_mean(AppCategory.GENERAL, "section")
    game_mean = result.category_mean(AppCategory.GAME, "section")

    # Everyone saves on average; games save clearly more.
    assert general_mean.mean > 50.0
    assert game_mean.mean > 1.4 * general_mean.mean

    # Magnitudes on the paper's order (calibrated, not measured).
    assert 80.0 < general_mean.mean < 220.0
    assert 180.0 < game_mean.mean < 420.0

    # Named offenders: CGV and Daum Maps lead the general category.
    by_name = {r.app_name: r for r in result.rows}
    general_savings = sorted(
        (r.saved_mw["section"], r.app_name)
        for r in result.category_rows(AppCategory.GENERAL))
    top_general = {name for _, name in general_savings[-6:]}
    assert "CGV" in top_general
    assert "Daum Maps" in top_general

    # Genuinely high-content games (racing/runner) save the least
    # among games: there is little redundancy to eliminate.
    assert by_name["Asphalt 8"].saved_mw["section"] < \
        by_name["Jelly Splash"].saved_mw["section"]

    # Touch boosting: small give-back, far below the saving.
    for category in (AppCategory.GENERAL, AppCategory.GAME):
        giveback = result.boost_giveback(category)
        section_mean = result.category_mean(category, "section").mean
        assert 0.0 <= giveback < 0.5 * section_mean

    # No app is made worse than the fixed baseline by the full system.
    assert all(r.saved_mw["section+boost"] > -10.0 for r in result.rows)
