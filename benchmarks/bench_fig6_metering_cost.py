"""Figure 6 — content-rate metering accuracy and cost vs pixel budget.

Paper shapes asserted here:

* comparing **all** 921K pixels cannot finish inside the 16.67 ms
  V-Sync slot, so per-frame full comparison is impractical;
* budgets at or below 36K are cheap (well under the slot);
* on the moving-dots stressor the error rate falls with the budget
  and is zero from 9K upward — making 9K the paper's operating point.

The timing here is a real pytest-benchmark sweep over the grid
comparison at each of the paper's five budgets, on genuine 720x1280
frame pairs.
"""

import pytest

from repro.core.grid import PAPER_PIXEL_BUDGETS, GridComparator, GridSpec
from repro.experiments import fig6
from repro.units import VSYNC_DEADLINE_60HZ_S

from conftest import publish

_FRAME_PAIR = None


def frame_pair():
    global _FRAME_PAIR
    if _FRAME_PAIR is None:
        first, _ = fig6.make_frame_pair(seed=0)
        _FRAME_PAIR = (first, first.copy())
    return _FRAME_PAIR


@pytest.mark.parametrize("label", list(PAPER_PIXEL_BUDGETS))
def test_fig6_comparison_cost(benchmark, label):
    """Time the equal-frames comparison at one pixel budget."""
    first, duplicate = frame_pair()
    grid = GridSpec.from_sample_count(first.shape[:2],
                                      PAPER_PIXEL_BUDGETS[label])
    comparator = GridComparator(grid)
    benchmark(lambda: comparator.frames_equal(duplicate, first))


def test_fig6_reproduction(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.run(duration_s=12.0, seed=3, repeats=30),
        rounds=1, iterations=1)
    publish("fig6_metering_cost", result.format())

    acc = {a.label: a for a in result.accuracy}
    cost = {c.label: c for c in result.cost}

    # Accuracy: error falls with budget; exact from 9K upward.
    assert acc["2K"].error_rate >= acc["4K"].error_rate
    assert acc["2K"].error_rate > 0.02
    for label in ("9K", "36K", "921K"):
        assert acc[label].error_rate == 0.0, label

    # Cost: monotone in samples; the full comparison blows the V-Sync
    # budget while 36K and below fit easily.
    assert cost["921K"].median_compare_s > cost["36K"].median_compare_s
    assert cost["36K"].median_compare_s > cost["9K"].median_compare_s
    assert not cost["921K"].within_vsync_budget
    for label in ("2K", "4K", "9K", "36K"):
        assert cost[label].within_vsync_budget, label
        assert cost[label].median_compare_s < \
            0.25 * VSYNC_DEADLINE_60HZ_S, label

    # The paper's operating point: 9K is the smallest exact budget.
    exact = [label for label in PAPER_PIXEL_BUDGETS
             if acc[label].error_rate == 0.0]
    assert min(exact, key=lambda lb: acc[lb].sample_count) == "9K"


def test_fig6_catalog_accuracy(benchmark):
    """Section 4.1's first validation: against ordinary application
    content (scrolls, scene changes, video frames) the 9K meter is
    essentially exact — "the accuracy of our scheme was initially
    100 %" — because real app changes dwarf a 10 px grid cell."""
    apps = ("Facebook", "MX Player", "Jelly Splash", "TempleRun",
            "Cash Slide", "Naver Webtoon")
    errors = benchmark.pedantic(
        lambda: fig6.run_catalog_accuracy(duration_s=15.0, seed=5,
                                          apps=list(apps)),
        rounds=1, iterations=1)
    for app, error in errors.items():
        assert error < 0.02, (app, error)
