"""Figure 3 — meaningful vs redundant frame rate for 30 applications.

Paper shapes asserted here:

* most general applications need < 30 fps of meaningful content;
* a sizeable minority (~40 %) of general apps produce ~20 redundant
  fps (Cash Slide and Daum Maps called out);
* every game's total frame rate exceeds 30 fps;
* 80 % of games produce > 20 redundant frames per second.
"""

from repro.apps.profile import AppCategory
from repro.experiments import fig3

from conftest import publish


def test_fig3_reproduction(survey, benchmark):
    result = benchmark.pedantic(lambda: fig3.run(survey),
                                rounds=1, iterations=1)
    publish("fig3_redundancy_survey", result.format())

    general = result.category_rows(AppCategory.GENERAL)
    games = result.category_rows(AppCategory.GAME)
    assert len(general) == 15 and len(games) == 15

    # General apps: most need < 30 fps of meaningful content.
    low_content = [r for r in general if r.meaningful_fps < 30.0]
    assert len(low_content) >= 13

    # ~40 % of general apps around 20 redundant fps (the achieved
    # redundant rate sits a little under the submit-loop rate, since
    # content frames also satisfy the loop cadence).
    frac = result.fraction_with_redundancy_above(AppCategory.GENERAL,
                                                 12.0)
    assert 0.2 <= frac <= 0.6

    # The two named offenders show the named behaviour.
    by_name = {r.app_name: r for r in result.rows}
    assert by_name["Cash Slide"].redundant_fps > 15.0
    assert by_name["Daum Maps"].redundant_fps > 12.0

    # Games: every frame rate > 30 fps.
    assert all(r.frame_rate_fps > 30.0 for r in games)

    # 80 % of games: > 20 redundant fps.
    frac_games = result.fraction_with_redundancy_above(AppCategory.GAME,
                                                       20.0)
    assert frac_games >= 0.8

    # Figure 2's Jelly Splash behaviour shows up in the survey too.
    assert by_name["Jelly Splash"].frame_rate_fps > 55.0
    assert by_name["Jelly Splash"].redundant_fps > 30.0
