"""Resilience — quality/power vs injected metering-fault rate.

Robustness shapes asserted here (no paper figure — this is the
deployment-hardening extension, see docs/robustness.md):

* the session survives every fault rate, including meter_fail=0.5;
* display quality never degrades materially: the watchdog trades
  power for quality, exactly like touch boosting does;
* heavy fault load pushes the panel toward the fail-safe maximum, so
  mean refresh (and power) rise with the fault rate;
* the watchdog actually cycles: fail-safe entries and recoveries are
  both observed at high fault rates.
"""

from repro.experiments import resilience

from conftest import publish

CONFIG = resilience.ResilienceConfig(duration_s=30.0, seed=1)


def test_resilience_reproduction(benchmark):
    result = benchmark.pedantic(lambda: resilience.run(CONFIG),
                                rounds=1, iterations=1)
    publish("resilience_faults", result.format())

    clean = result.row_at(0.0)
    heavy = result.rows[-1]

    # No crash, all rows produced, in sweep order.
    assert [r.fault_rate for r in result.rows] == \
        list(CONFIG.fault_rates)

    # Fault-free row is genuinely fault-free.
    assert clean.meter_failures == 0
    assert clean.failsafe_entries == 0

    # Quality over power: never materially below the clean session.
    assert result.min_quality > 0.95 * clean.display_quality

    # Failing safe costs power: the heavy-fault session refreshes
    # faster (and burns more) than the clean governed session, but
    # still no more than the fixed baseline (plus rounding).
    assert heavy.meter_failures > 0
    assert heavy.failsafe_entries >= 1
    assert heavy.recoveries >= 1
    assert heavy.mean_refresh_hz > clean.mean_refresh_hz
    assert heavy.mean_power_mw > clean.mean_power_mw
    assert heavy.mean_power_mw <= 1.02 * result.baseline_power_mw
