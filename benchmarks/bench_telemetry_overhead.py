"""Telemetry overhead — enabled vs disabled wall time (tier 2).

The zero-overhead claim has two halves.  The *correctness* half
(disabled telemetry is bit-identical) is tier-1, in
``tests/test_telemetry.py``.  This benchmark asserts the *performance*
half: running the same session with full telemetry (ring sink, span
profiling, JSONL stream) costs **under 5 %** extra wall time over the
uninstrumented path.

Method: min-of-N repetitions per variant, interleaved, so one noisy
scheduler hiccup cannot bias either side.  The minimum is the right
statistic for overhead bounds — noise only ever adds time.

Also publishes a sample JSONL stream to ``benchmarks/out/`` (uploaded
as a CI artifact) plus the span-percentile table for the stream.
"""

from __future__ import annotations

import time

from repro.sim.session import SessionConfig, run_session
from repro.telemetry import TelemetryConfig
from repro.telemetry.stats import format_stats, summarize_jsonl

from conftest import OUT_DIR, publish

#: Overhead budget: telemetry-on must stay within 5 % of telemetry-off.
OVERHEAD_BUDGET = 0.05

#: Interleaved repetitions per variant; min-of-N per side.
REPETITIONS = 5

#: Native panel resolution (divisor 1): the overhead bound is a claim
#: about realistic metering work.  At the default divisor-8 toy frames
#: the comparison is nearly free and the fixed per-event cost of the
#: JSONL stream dominates the ratio, which measures Python dict
#: serialization, not the instrumentation design.
SESSION = dict(app="Facebook", duration_s=30.0, seed=1,
               resolution_divisor=1)


def _run_once(telemetry):
    t0 = time.perf_counter()
    result = run_session(SessionConfig(**SESSION, telemetry=telemetry))
    elapsed = time.perf_counter() - t0
    return elapsed, result


def test_telemetry_overhead_under_budget(benchmark):
    OUT_DIR.mkdir(exist_ok=True)
    jsonl_path = OUT_DIR / "telemetry_sample.jsonl"

    disabled_times = []
    enabled_times = []
    events_total = 0
    for _ in range(REPETITIONS):
        elapsed, _ = _run_once(None)
        disabled_times.append(elapsed)
        elapsed, result = _run_once(
            TelemetryConfig(jsonl_path=str(jsonl_path)))
        enabled_times.append(elapsed)
        events_total = result.telemetry.events_total

    disabled = min(disabled_times)
    enabled = min(enabled_times)
    overhead = enabled / disabled - 1.0

    # One representative timed run for the pytest-benchmark table.
    benchmark.pedantic(lambda: _run_once(None), rounds=1, iterations=1)

    summary = summarize_jsonl(jsonl_path)
    lines = [
        f"Telemetry overhead ({SESSION['app']}, "
        f"{SESSION['duration_s']:g} s session, min of "
        f"{REPETITIONS} interleaved runs per side)",
        f"  disabled: {1e3 * disabled:8.1f} ms",
        f"  enabled:  {1e3 * enabled:8.1f} ms  "
        f"({events_total} events -> {jsonl_path.name})",
        f"  overhead: {100 * overhead:+8.2f} %  "
        f"(budget {100 * OVERHEAD_BUDGET:.0f} %)",
        "",
        format_stats(summary),
    ]
    publish("telemetry_overhead", "\n".join(lines))

    # The stream is real and parseable.
    assert summary["events"]["total"] == events_total
    assert summary["rate_switches"]["count"] >= 1
    assert summary["spans"], "span profiling produced no spans"

    # The budget itself.
    assert overhead < OVERHEAD_BUDGET, (
        f"telemetry overhead {100 * overhead:.2f} % exceeds "
        f"{100 * OVERHEAD_BUDGET:.0f} % budget "
        f"(disabled {disabled:.3f} s, enabled {enabled:.3f} s)")
