"""Figure 11 — display quality per application.

Paper shapes asserted here:

* section-only control loses visible quality on the interaction-heavy
  apps (80th-percentile floors around 55 % general / 85 % games);
* touch boosting lifts quality to >= ~95 % for 80 % of apps in both
  categories;
* the full system keeps every app's quality above ~90 % (the paper's
  closing claim: "more than 90 % for all of the applications").
"""

from repro.apps.profile import AppCategory
from repro.experiments import fig11

from conftest import publish


def test_fig11_reproduction(survey, benchmark):
    result = benchmark.pedantic(lambda: fig11.run(survey),
                                rounds=1, iterations=1)
    publish("fig11_display_quality", result.format())

    # Section-only: the 80 %-of-apps floor shows visible degradation
    # somewhere below boosting's.
    for category in (AppCategory.GENERAL, AppCategory.GAME):
        q_section = result.quality_80th(category, "section")
        q_boost = result.quality_80th(category, "section+boost")
        assert q_boost > q_section, category
        # Paper floors: >= 55 % (general) / >= 85 % (games) section;
        # >= 95 % with boosting.  Allow a few points of slack.
        floor = 0.5 if category is AppCategory.GENERAL else 0.8
        assert q_section >= floor, category
        assert q_boost >= 0.9, category

    # Every single app stays above ~90 % under the full system.
    assert result.worst_quality("section+boost") >= 0.85

    # Boosting helps (or at least never hurts) each individual app.
    for row in result.rows:
        assert row.quality["section+boost"] >= \
            row.quality["section"] - 0.03, row.app_name
