"""Tournament — power-vs-quality leaderboard over the governor zoo.

No paper figure: this is the governor-zoo extension (see
docs/governors.md).  Shapes asserted here:

* every registered governor completes every workload (catalog apps
  and synthetic trace replays) — the registry fan-out is total;
* the fixed-60 baseline anchors the board: zero savings, and no
  governed policy draws *more* mean power than it on this mix;
* the SmartNight-style luminance probe holds end to end: the dark
  trace draws strictly less total power (emission + drive) than the
  light twin under the luminance governor.
"""

from repro.experiments import tournament

from conftest import publish

CONFIG = tournament.TournamentConfig(
    apps=("Facebook", "Jelly Splash", "MX Player"),
    trace_kinds=("video", "idle"),
    duration_s=10.0, trace_duration_s=10.0, seed=1)


def test_tournament_reproduction(benchmark):
    result = benchmark.pedantic(lambda: tournament.run(CONFIG),
                                rounds=1, iterations=1)
    publish("tournament", result.format())

    document = result.document
    board = document["leaderboard"]
    governors = document["governors"]
    assert len(board) == len(governors) >= 11

    cells = document["cells"]
    assert len(cells) == len(governors) * len(document["workloads"])
    assert all(cell["metrics"]["mean_power_mw"] is not None
               for cell in cells)

    by_name = {row["governor"]: row for row in board}
    fixed = by_name[tournament.BASELINE]
    assert fixed["savings_vs_fixed_pct"] == 0.0
    assert fixed["rank"] == len(board)
    for row in board:
        if row["governor"] != tournament.BASELINE:
            assert row["savings_vs_fixed_pct"] >= 0.0

    probe = document["luminance_probe"]
    assert probe["dark_below_light"]
    assert probe["dark"]["mean_power_mw"] < \
        probe["light"]["mean_power_mw"]
