#!/usr/bin/env python3
"""CI guard: simulation-affecting changes must bump CODE_REV_SALT.

The result cache (``repro.cache``) keys entries on the session spec
plus a manual code-revision salt.  Any change under the directories
that define what a session *computes* — ``src/repro/sim/``,
``src/repro/core/``, ``src/repro/power/`` — can change the summary an
unchanged spec produces, which would otherwise let stale cache entries
masquerade as fresh results.  This script fails the build when such a
change lands without a salt bump.

Usage::

    python scripts/check_salt_bump.py [--base <ref>]

``--base`` defaults to the merge base with ``origin/main`` (falling
back to ``HEAD~1`` in shallow or detached checkouts).  The check
passes when either no watched path changed or the ``CODE_REV_SALT``
assignment in ``src/repro/cache.py`` differs between base and HEAD.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys

#: Directories whose changes alter what a cached session computes.
WATCHED = ("src/repro/sim/", "src/repro/core/", "src/repro/power/")

#: File holding the salt, and the assignment pattern inside it.
SALT_FILE = "src/repro/cache.py"
SALT_RE = re.compile(r'^CODE_REV_SALT\s*=\s*"([^"]*)"', re.MULTILINE)


def _git(*args: str) -> str:
    return subprocess.run(["git", *args], capture_output=True,
                          text=True, check=True).stdout


def _resolve_base(explicit: str | None) -> str:
    if explicit:
        return explicit
    for candidate in ("origin/main", "main"):
        try:
            return _git("merge-base", candidate, "HEAD").strip()
        except subprocess.CalledProcessError:
            continue
    return "HEAD~1"


def _salt_at(ref: str) -> str | None:
    try:
        text = _git("show", f"{ref}:{SALT_FILE}")
    except subprocess.CalledProcessError:
        return None
    match = SALT_RE.search(text)
    return match.group(1) if match else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base", default=None,
                        help="ref to diff against (default: merge "
                             "base with origin/main)")
    args = parser.parse_args(argv)
    base = _resolve_base(args.base)

    try:
        changed = _git("diff", "--name-only", base,
                       "HEAD").splitlines()
    except subprocess.CalledProcessError as exc:
        print(f"check_salt_bump: cannot diff against {base!r}: "
              f"{exc.stderr or exc}", file=sys.stderr)
        return 2

    touched = sorted(path for path in changed
                     if path.startswith(WATCHED))
    if not touched:
        print(f"check_salt_bump: no watched paths changed vs "
              f"{base[:12]}; ok")
        return 0

    old_salt = _salt_at(base)
    new_salt = _salt_at("HEAD")
    if new_salt is None:
        print(f"check_salt_bump: no CODE_REV_SALT found in "
              f"{SALT_FILE} at HEAD", file=sys.stderr)
        return 1
    if old_salt is None or old_salt != new_salt:
        print(f"check_salt_bump: watched paths changed "
              f"({len(touched)} file(s)) and salt bumped "
              f"({old_salt!r} -> {new_salt!r}); ok")
        return 0

    print("check_salt_bump: the following simulation-affecting files "
          f"changed vs {base[:12]} without a CODE_REV_SALT bump in "
          f"{SALT_FILE}:", file=sys.stderr)
    for path in touched:
        print(f"  {path}", file=sys.stderr)
    print(f"current salt: {new_salt!r} — bump it so stale cache "
          "entries are orphaned.", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
