"""Tests for baseline governors (fixed, oracle, E3)."""

import pytest

from repro.apps.base import Application
from repro.apps.profile import AppCategory, AppProfile, RenderStyle
from repro.baselines.e3 import E3ScrollGovernor
from repro.baselines.fixed import FixedRefreshGovernor
from repro.baselines.oracle import OracleGovernor
from repro.core.section_table import SectionTable
from repro.errors import ConfigurationError
from repro.graphics.compositor import SurfaceManager
from repro.graphics.framebuffer import Framebuffer
from repro.graphics.surface import Surface
from repro.inputs.touch import TouchEvent, TouchKind
from repro.sim.engine import Simulator

RATES = (20.0, 24.0, 30.0, 40.0, 60.0)


class TestFixedRefreshGovernor:
    def test_constant(self):
        gov = FixedRefreshGovernor(60.0)
        assert gov.select_rate(0.0) == 60.0
        assert gov.select_rate(1e6) == 60.0

    def test_touch_ignored(self):
        gov = FixedRefreshGovernor(60.0)
        assert gov.on_touch(1.0) is None

    def test_name_includes_rate(self):
        assert "60" in FixedRefreshGovernor(60.0).name

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedRefreshGovernor(0.0)


class TestOracleGovernor:
    def _app(self, idle=5.0, active=33.0):
        profile = AppProfile(
            name="oracle-test", category=AppCategory.GENERAL,
            idle_content_fps=idle, active_content_fps=active,
            render_style=RenderStyle.SCENE)
        sim = Simulator()
        fb = Framebuffer(16, 12)
        comp = SurfaceManager(fb)
        surface = Surface(16, 12)
        comp.register_surface(surface)
        return sim, Application(profile, sim, comp, surface)

    def test_idle_rate_from_true_content(self):
        _, app = self._app(idle=5.0)
        gov = OracleGovernor(SectionTable.from_rates(RATES), app)
        assert gov.select_rate(1.0) == 20.0

    def test_reacts_instantly_to_interaction(self):
        sim, app = self._app(idle=5.0, active=33.0)
        gov = OracleGovernor(SectionTable.from_rates(RATES), app)
        app.on_touch(TouchEvent(1.0))
        # 33 fps true content -> 40 Hz section, with zero lag.
        assert gov.select_rate(1.01) == 40.0

    def test_content_above_panel_max_saturates(self):
        _, app = self._app(idle=5.0, active=200.0)
        gov = OracleGovernor(SectionTable.from_rates(RATES), app)
        app.on_touch(TouchEvent(0.5))
        assert gov.select_rate(0.6) == 60.0


class TestE3ScrollGovernor:
    def test_low_rate_by_default(self):
        gov = E3ScrollGovernor(20.0, 60.0)
        assert gov.select_rate(0.0) == 20.0

    def test_touch_raises_immediately(self):
        gov = E3ScrollGovernor(20.0, 60.0, tail_s=1.0)
        assert gov.on_touch(5.0) == 60.0
        assert gov.select_rate(5.9) == 60.0
        assert gov.select_rate(6.1) == 20.0

    def test_scroll_holds_for_gesture_plus_tail(self):
        gov = E3ScrollGovernor(20.0, 60.0, tail_s=1.0)
        gov.on_touch_event(TouchEvent(5.0, kind=TouchKind.SCROLL,
                                      duration_s=2.0))
        assert gov.select_rate(7.5) == 60.0
        assert gov.select_rate(8.1) == 20.0

    def test_content_blindness(self):
        """E3's weakness the paper's scheme fixes: video with no touch
        gets the low rate."""
        gov = E3ScrollGovernor(20.0, 60.0)
        # A 24 fps video is playing, but no interaction happens:
        assert gov.select_rate(100.0) == 20.0  # stutters the video

    def test_inverted_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            E3ScrollGovernor(60.0, 20.0)

    def test_equal_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            E3ScrollGovernor(60.0, 60.0)
