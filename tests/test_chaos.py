"""Chaos tests: induced crashes must salvage, never corrupt.

Three layers:

* the batch pool — a worker SIGKILLed mid-batch costs exactly its own
  config; the survivors' results stay byte-identical to a serial run
  (the merge is deterministic even through a crash);
* the damage helpers in `repro.service.chaos` — every corruption mode
  actually renders a checkpoint unusable, and a torn journal still
  reads;
* an in-process service recovery — a corrupted checkpoint is detected
  (``checkpoint_invalid``), discarded, and the job restarted from
  scratch with a byte-identical summary.

The full subprocess chaos campaign (SIGKILL of a live ``repro serve``)
runs as ``repro chaos`` in CI's service-smoke job; these tests keep
the pieces honest at unit speed.

Process-pool tests use ``fork`` so the parent's monkeypatches reach
the workers (spawn re-imports the module pristine).
"""

import json
import os
import signal

import pytest

import repro.sim.batch as batch
from repro.errors import CheckpointError, ServiceError
from repro.ioutil import read_jsonl
from repro.pipeline.spec import SessionSpec
from repro.service import (
    JobRequest,
    JobStatus,
    Journal,
    ServicePaths,
    read_journal,
    submit_job,
)
from repro.service.chaos import (
    CHAOS_SCENARIOS,
    ChaosConfig,
    corrupt_checkpoint,
    truncate_journal_tail,
)
from repro.service.jobs import load_result
from repro.sim.batch import (
    batch_failure_summary,
    is_failure_record,
    run_batch,
)
from repro.sim.runner import SessionRunner, load_checkpoint
from repro.sim.session import SessionConfig


def _configs(n=4, duration_s=2.0):
    return [SessionConfig(app="Jelly Splash", governor="section+boost",
                          duration_s=duration_s, seed=i)
            for i in range(n)]


_REAL_PAYLOAD = batch._session_payload


def _sigkill_seed_99(config, capture):
    # A real SIGKILL (not a clean exit): the kernel tears the worker
    # down with no Python cleanup, the hardest crash the pool can see.
    if config.seed == 99:
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_PAYLOAD(config, capture)


class TestPooledWorkerSigkill:
    def test_sigkill_mid_batch_salvages_survivors(self, monkeypatch):
        monkeypatch.setattr(batch, "_session_payload",
                            _sigkill_seed_99)
        configs = _configs()
        victim = configs[1]
        configs[1] = SessionConfig(
            app=victim.app, governor=victim.governor,
            duration_s=victim.duration_s, seed=99)
        results = run_batch(configs, workers=2, mp_context="fork",
                            chunksize=1)
        assert [is_failure_record(r) for r in results] == \
            [False, True, False, False]
        record = results[1]
        assert record["error_type"] == "WorkerCrashError"
        assert record["config_index"] == 1
        summary = batch_failure_summary(results)
        assert summary["counters"]["batch.worker_crashes"] == 1
        # Survivors are byte-identical to an uncontested serial run —
        # the crash must not perturb the deterministic merge.
        innocents = [configs[0], configs[2], configs[3]]
        serial = run_batch(innocents, workers=1)
        survivors = [results[0], results[2], results[3]]
        assert json.dumps(survivors, sort_keys=True) == \
            json.dumps(serial, sort_keys=True)


class TestDamageHelpers:
    def _checkpoint(self, tmp_path):
        runner = SessionRunner(_configs(n=1)[0])
        runner.advance(0.5)
        path = tmp_path / "ckpt.json"
        runner.save_checkpoint(path, job_id="j1")
        return path

    @pytest.mark.parametrize("mode",
                             ["truncate", "garbage", "digest"])
    def test_every_corruption_mode_is_detected(self, tmp_path, mode):
        path = self._checkpoint(tmp_path)
        corrupt_checkpoint(path, mode, seed=3)
        if mode == "digest":
            # Structurally valid JSON: the lie only surfaces when the
            # replayed state digest is compared.
            from repro.sim.runner import resume_runner
            with pytest.raises(CheckpointError):
                resume_runner(load_checkpoint(path))
        else:
            with pytest.raises(CheckpointError):
                load_checkpoint(path)

    def test_unknown_corruption_mode_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with pytest.raises(ServiceError):
            corrupt_checkpoint(path, "gamma_rays")

    def test_truncate_journal_tail_tears_last_record(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path, fsync=False)
        journal.append("service_start")
        journal.append("job_ingested", job_id="j1")
        journal.close()
        assert truncate_journal_tail(path)
        raw = read_jsonl(path)
        assert raw.damaged
        assert [r["op"] for r in raw.records] == ["service_start"]

    def test_truncate_missing_journal_is_noop(self, tmp_path):
        assert not truncate_journal_tail(tmp_path / "absent.jsonl")


class TestChaosConfigValidation:
    def test_defaults_cover_all_scenarios(self):
        assert ChaosConfig().scenarios == CHAOS_SCENARIOS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ServiceError):
            ChaosConfig(scenarios=("kill", "meteor"))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ServiceError):
            ChaosConfig(scenarios=())

    def test_bad_job_count_rejected(self):
        with pytest.raises(ServiceError):
            ChaosConfig(jobs=0)


class TestServiceRecoversFromCorruptCheckpoint:
    def test_corrupt_checkpoint_restarts_job_from_scratch(
            self, tmp_path):
        import asyncio

        from repro.analysis.export import json_sanitize
        from repro.service import ServiceConfig, SessionService
        from repro.sim.batch import summarize_result
        from repro.sim.session import run_session

        config = _configs(n=1, duration_s=2.0)[0]
        spec = SessionSpec.from_config(config)
        submit_job(tmp_path, JobRequest(
            job_id="hurt", spec=spec.to_json_dict(),
            deadline_s=None, submitted_seq=0))
        # Plant a corrupted checkpoint where the service will look.
        paths = ServicePaths(tmp_path).ensure()
        runner = SessionRunner(config)
        runner.advance(1.0)
        runner.save_checkpoint(paths.checkpoint_path("hurt"),
                               job_id="hurt")
        corrupt_checkpoint(paths.checkpoint_path("hurt"), "garbage",
                           seed=1)

        service = SessionService(ServiceConfig(
            state_dir=str(tmp_path), workers=1, slice_sleep_s=0.0,
            fsync_journal=False, until_idle=True, max_runtime_s=60.0))
        asyncio.run(service.serve())

        result = load_result(paths, "hurt")
        assert result["status"] == JobStatus.DONE
        expected = json_sanitize(summarize_result(run_session(config)))
        assert json.dumps(result["summary"], sort_keys=True) == \
            json.dumps(expected, sort_keys=True)
        journal = read_journal(paths.journal_path)
        assert journal.count("checkpoint_invalid", job_id="hurt") == 1
        assert journal.count("job_done", job_id="hurt") == 1
