"""Tests for the ContentCentricManager facade."""

import numpy as np
import pytest

from repro.core.governor import SectionBasedGovernor, TouchBoostGovernor
from repro.core.manager import ContentCentricManager, ManagerConfig
from repro.display.panel import DisplayPanel
from repro.display.presets import GALAXY_S3_PANEL
from repro.errors import ConfigurationError
from repro.graphics.framebuffer import Framebuffer
from repro.sim.engine import Simulator


def make_stack():
    sim = Simulator()
    panel = DisplayPanel(sim, GALAXY_S3_PANEL)
    fb = Framebuffer(90, 160)
    return sim, panel, fb


class TestConstruction:
    def test_default_policy_is_boosted_section(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        assert isinstance(mgr.policy, TouchBoostGovernor)
        assert isinstance(mgr.policy.inner, SectionBasedGovernor)
        assert mgr.policy.boost_rate_hz == 60.0

    def test_boost_disabled(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(
            sim, panel, fb, ManagerConfig(touch_boost=False))
        assert isinstance(mgr.policy, SectionBasedGovernor)

    def test_table_built_for_panel(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        assert mgr.table.refresh_rates_hz == \
            GALAXY_S3_PANEL.refresh_rates_hz

    def test_custom_policy_respected(self):
        sim, panel, fb = make_stack()
        custom = SectionBasedGovernor.__new__(SectionBasedGovernor)
        custom.name = "custom"
        custom.select_rate = lambda now: 30.0
        custom.on_touch = lambda t: None
        mgr = ContentCentricManager(sim, panel, fb, policy=custom)
        assert mgr.governor_name == "custom"

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ManagerConfig(decision_period_s=0.0)
        with pytest.raises(ConfigurationError):
            ManagerConfig(boost_hold_s=-1.0)


class TestLifecycle:
    def test_idle_session_drops_to_minimum(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        panel.start()
        mgr.start()
        sim.run_until(2.0)
        assert panel.refresh_rate_hz == 20.0

    def test_touch_boosts_immediately(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        panel.start()
        mgr.start()
        sim.run_until(2.0)
        mgr.on_touch(sim.now)
        assert panel.target_rate_hz == 60.0

    def test_double_start_rejected(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        mgr.start()
        with pytest.raises(ConfigurationError):
            mgr.start()

    def test_stop_then_idempotent(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        mgr.start()
        mgr.stop()
        mgr.stop()  # no-op

    def test_content_rate_passthrough(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        fb.write(np.full(fb.shape, 9, dtype=np.uint8), 0.5)
        assert mgr.content_rate(1.0) == pytest.approx(1.0)

    def test_meter_tracks_framebuffer_under_vsync(self):
        sim, panel, fb = make_stack()
        mgr = ContentCentricManager(sim, panel, fb)
        panel.start()
        mgr.start()
        # Write a changing frame at every vsync for one second.
        counter = [0]

        def on_vsync(time):
            counter[0] += 1
            fb.write(np.full(fb.shape, counter[0] % 256, dtype=np.uint8),
                     time)

        panel.add_vsync_listener(on_vsync)
        sim.run_until(3.0)
        # Content rate ~ refresh rate; governor should have raised the
        # rate to the maximum section.
        assert panel.refresh_rate_hz == 60.0
