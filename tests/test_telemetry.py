"""Tests for the telemetry subsystem: hub, sinks, metrics, spans,
stream summarization, and the zero-overhead equivalence guarantee."""

import json

import pytest

from repro.errors import TelemetryError
from repro.sim.batch import batch_failure_summary, run_batch
from repro.sim.session import SessionConfig, run_session
from repro.telemetry import (
    EVENT_FAULT_INJECTED,
    EVENT_RATE_SWITCH,
    EVENT_SESSION_END,
    EVENT_SESSION_START,
    EVENT_SPAN,
    EVENT_TOUCH_BOOST,
    EVENT_WATCHDOG_STATE,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    TelemetryConfig,
    TelemetryHub,
    parse_jsonl,
    span_summary,
    summarize_jsonl,
    timed,
)
from repro.telemetry.stats import format_stats


class FakeClock:
    """Deterministic monotonic clock for hub tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Hub
# ----------------------------------------------------------------------

class TestTelemetryHub:
    def test_emit_stamps_session_and_clocks(self):
        clock = FakeClock()
        ring = RingBufferSink(16)
        hub = TelemetryHub("app:gov:1", sinks=[ring], clock=clock)
        clock.advance(0.25)
        event = hub.emit(EVENT_RATE_SWITCH, 3.0, from_hz=60, to_hz=40)
        assert event.session_id == "app:gov:1"
        assert event.sim_time_s == 3.0
        assert event.wall_time_s == pytest.approx(0.25)
        assert ring.events == (event,)

    def test_unknown_kind_rejected(self):
        hub = TelemetryHub("s")
        with pytest.raises(TelemetryError) as excinfo:
            hub.emit("made_up_kind", 0.0)
        assert excinfo.value.context["kind"] == "made_up_kind"

    def test_emit_after_close_rejected(self):
        hub = TelemetryHub("s")
        hub.close()
        with pytest.raises(TelemetryError):
            hub.emit(EVENT_SESSION_END, 1.0)

    def test_event_counts(self):
        hub = TelemetryHub("s")
        hub.emit(EVENT_RATE_SWITCH, 0.0, from_hz=60, to_hz=40)
        hub.emit(EVENT_RATE_SWITCH, 1.0, from_hz=40, to_hz=60)
        hub.emit(EVENT_TOUCH_BOOST, 1.5, rate_hz=60)
        assert hub.events_total == 3
        assert hub.event_counts == {EVENT_RATE_SWITCH: 2,
                                    EVENT_TOUCH_BOOST: 1}

    def test_span_records_duration_and_emits_event(self):
        clock = FakeClock()
        ring = RingBufferSink(16)
        hub = TelemetryHub("s", sinks=[ring], clock=clock)
        with hub.span("meter.grid_compare", 2.0):
            clock.advance(0.001)
        stats = hub.span_stats()["meter.grid_compare"]
        assert stats["count"] == 1
        assert stats["total_s"] == pytest.approx(0.001)
        (event,) = ring.by_kind(EVENT_SPAN)
        assert event.data["name"] == "meter.grid_compare"
        assert event.sim_time_s == 2.0

    def test_profile_spans_off_suppresses_span_events(self):
        ring = RingBufferSink(16)
        hub = TelemetryHub("s", sinks=[ring], profile_spans=False)
        with hub.span("meter.grid_compare", 0.0):
            pass
        assert hub.span_stats() == {}
        assert len(ring) == 0

    def test_summary_dict_schema(self):
        hub = TelemetryHub("app:gov:7")
        hub.emit(EVENT_RATE_SWITCH, 0.5, from_hz=60, to_hz=40)
        hub.metrics.counter("panel.rate_switches").inc()
        summary = hub.summary_dict()
        assert summary["session_id"] == "app:gov:7"
        assert summary["events"]["total"] == 1
        assert summary["metrics"]["counters"][
            "panel.rate_switches"] == 1
        assert set(summary) == {"session_id", "events", "metrics",
                                "spans"}


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class TestSinks:
    def test_null_sink_counts_drops(self):
        sink = NullSink()
        hub = TelemetryHub("s", sinks=[sink])
        hub.emit(EVENT_TOUCH_BOOST, 0.0, rate_hz=60)
        assert sink.dropped == 1

    def test_ring_buffer_eviction(self):
        sink = RingBufferSink(2)
        hub = TelemetryHub("s", sinks=[sink])
        for t in range(3):
            hub.emit(EVENT_TOUCH_BOOST, float(t), rate_hz=60)
        assert sink.written == 3
        assert len(sink) == 2
        assert [e.sim_time_s for e in sink.events] == [1.0, 2.0]

    def test_ring_buffer_capacity_validated(self):
        with pytest.raises(TelemetryError):
            RingBufferSink(0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        hub = TelemetryHub("s", sinks=[JsonlSink(path)])
        hub.emit(EVENT_RATE_SWITCH, 1.0, from_hz=60, to_hz=40)
        hub.close()
        (record,) = parse_jsonl(path)
        assert record["v"] == 1
        assert record["kind"] == EVENT_RATE_SWITCH
        assert record["data"] == {"from_hz": 60, "to_hz": 40}

    def test_jsonl_write_after_close_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        hub = TelemetryHub("s", sinks=[sink])
        with pytest.raises(TelemetryError):
            hub.emit(EVENT_TOUCH_BOOST, 0.0, rate_hz=60)

    def test_parse_jsonl_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\nnot json\n')
        with pytest.raises(TelemetryError) as excinfo:
            parse_jsonl(path)
        assert excinfo.value.context["line"] == 2


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("panel.rate_switches")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("panel.final_refresh_hz")
        gauge.set(60.0)
        gauge.set(40.0)
        assert gauge.value == 40.0

    def test_histogram_fixed_buckets(self):
        histogram = MetricsRegistry().histogram(
            "governor.selected_rate_hz", [20.0, 40.0, 60.0])
        for value in (20.0, 35.0, 60.0, 90.0):
            histogram.observe(value)
        # Buckets: (-inf,20] (20,40] (40,60] (60,inf)
        assert histogram.bucket_counts == (1, 1, 1, 1)
        assert histogram.count == 4
        assert histogram.as_dict()["max"] == 90.0

    def test_invalid_name_rejected(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("Panel.RateSwitches")

    def test_cross_type_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("meter.frames")
        with pytest.raises(TelemetryError):
            registry.gauge("meter.frames")

    def test_histogram_edge_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("governor.selected_rate_hz", [20.0, 60.0])
        with pytest.raises(TelemetryError):
            registry.histogram("governor.selected_rate_hz",
                               [20.0, 40.0])

    def test_as_dict_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b.z").inc()
        registry.counter("a.z").inc(2)
        snapshot = registry.as_dict()
        assert list(snapshot["counters"]) == ["a.z", "b.z"]
        json.dumps(snapshot)  # must be serializable as-is


# ----------------------------------------------------------------------
# @timed decorator
# ----------------------------------------------------------------------

class TestTimedDecorator:
    class Instrumented:
        def __init__(self, hub):
            self._telemetry = hub
            self.calls = 0

        @timed("meter.content_rate", time_arg=0)
        def read(self, now):
            self.calls += 1
            return now * 2

    def test_no_hub_is_passthrough(self):
        obj = self.Instrumented(None)
        assert obj.read(3.0) == 6.0
        assert obj.calls == 1

    def test_hub_records_span_with_sim_time(self):
        ring = RingBufferSink(8)
        hub = TelemetryHub("s", sinks=[ring], clock=FakeClock())
        obj = self.Instrumented(hub)
        assert obj.read(3.0) == 6.0
        (event,) = ring.by_kind(EVENT_SPAN)
        assert event.sim_time_s == 3.0
        assert event.data["name"] == "meter.content_rate"

    def test_span_summary_empty(self):
        assert span_summary([])["count"] == 0

    def test_span_summary_percentiles(self):
        stats = span_summary([0.001] * 99 + [0.1])
        assert stats["count"] == 100
        assert stats["p50_s"] == pytest.approx(0.001)
        assert stats["max_s"] == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Session integration (the ISSUE's acceptance criteria)
# ----------------------------------------------------------------------

def _run(app="Facebook", seed=1, duration_s=20.0, **kwargs):
    return run_session(SessionConfig(
        app=app, duration_s=duration_s, seed=seed, **kwargs))


class TestSessionTelemetry:
    def test_default_scenario_stream_has_required_events(self, tmp_path):
        path = tmp_path / "session.jsonl"
        result = _run(telemetry=TelemetryConfig(jsonl_path=str(path)))
        assert result.telemetry is not None
        counts = result.telemetry.event_counts
        assert counts.get(EVENT_RATE_SWITCH, 0) >= 1
        assert counts.get(EVENT_TOUCH_BOOST, 0) >= 1
        assert counts.get(EVENT_SPAN, 0) >= 1
        assert counts[EVENT_SESSION_START] == 1
        assert counts[EVENT_SESSION_END] == 1
        # And the file round-trips through the stats pipeline.
        records = parse_jsonl(path)
        assert len(records) == result.telemetry.events_total
        assert all(r["v"] == 1 for r in records)

    def test_stats_summary_round_trip(self, tmp_path):
        path = tmp_path / "session.jsonl"
        result = _run(telemetry=TelemetryConfig(jsonl_path=str(path)))
        summary = summarize_jsonl(path)
        assert summary["sessions"] == ["Facebook:section+boost:1"]
        assert (summary["events"]["total"]
                == result.telemetry.events_total)
        assert (summary["rate_switches"]["count"]
                == result.telemetry.event_counts[EVENT_RATE_SWITCH])
        assert "meter.grid_compare" in summary["spans"]
        text = format_stats(summary)
        assert "rate switches" in text
        assert "meter.grid_compare" in text

    def test_session_id_is_deterministic(self):
        result = _run(duration_s=5.0, seed=9)
        assert result.telemetry is None  # default: off
        result = _run(duration_s=5.0, seed=9,
                      telemetry=TelemetryConfig())
        assert (result.telemetry.session_id
                == "Facebook:section+boost:9")

    def test_metrics_cover_panel_governor_meter(self):
        result = _run(duration_s=10.0, telemetry=TelemetryConfig())
        counters = result.telemetry.summary_dict()["metrics"]["counters"]
        assert counters["panel.vsyncs"] > 0
        assert counters["meter.frames"] > 0
        assert counters["governor.decisions"] > 0
        assert counters["panel.rate_switches"] == \
            result.panel.rate_switches

    def test_hub_closed_when_session_ends(self):
        result = _run(duration_s=5.0, telemetry=TelemetryConfig())
        assert result.telemetry.closed

    def test_fault_counters_snapshot_matches_fault_summary(self):
        from repro.faults.plan import FaultPlan
        result = _run(
            duration_s=20.0,
            faults=FaultPlan.parse("meter_fail=0.5", seed=3),
            telemetry=TelemetryConfig())
        faults = result.fault_summary_dict()
        assert faults["injected_total"] > 0
        counters = result.telemetry.summary_dict()["metrics"]["counters"]
        # Single emission path: registry totals are snapshots of the
        # same summary dicts, never independently counted.
        assert counters["faults.injected_total"] == \
            faults["injected_total"]
        assert counters["faults.injected.meter_fail"] == \
            faults["injected_by_site"]["meter_fail"]
        assert counters["watchdog.meter_failures"] == \
            faults["meter_failures"]
        # Ladder moves show up as events.
        assert result.telemetry.event_counts.get(
            EVENT_WATCHDOG_STATE, 0) > 0
        assert result.telemetry.event_counts.get(
            EVENT_FAULT_INJECTED, 0) == faults["injected_total"]


# ----------------------------------------------------------------------
# Zero-overhead equivalence (disabled telemetry changes nothing)
# ----------------------------------------------------------------------

class TestEquivalence:
    def _comparable_summary(self, result):
        from repro.analysis.export import session_summary_dict
        return session_summary_dict(result)

    def test_disabled_telemetry_is_bit_identical(self):
        baseline = self._comparable_summary(_run(duration_s=15.0))
        instrumented = self._comparable_summary(
            _run(duration_s=15.0, telemetry=TelemetryConfig()))
        instrumented.pop("telemetry")
        assert (json.dumps(baseline, sort_keys=True)
                == json.dumps(instrumented, sort_keys=True))

    def test_disabled_summary_has_no_telemetry_key(self):
        summary = self._comparable_summary(_run(duration_s=5.0))
        assert "telemetry" not in summary

    def test_equivalence_under_faults(self):
        from repro.faults.plan import FaultPlan

        def run(telemetry):
            return self._comparable_summary(_run(
                duration_s=15.0,
                faults=FaultPlan.parse(
                    "meter_fail=0.2,panel_refuse=0.1", seed=5),
                telemetry=telemetry))

        baseline = run(None)
        instrumented = run(TelemetryConfig())
        instrumented.pop("telemetry")
        assert (json.dumps(baseline, sort_keys=True)
                == json.dumps(instrumented, sort_keys=True))


# ----------------------------------------------------------------------
# Batch counters and progress
# ----------------------------------------------------------------------

class TestBatchTelemetry:
    def _configs(self, n=2, **kwargs):
        return [SessionConfig(app="Facebook", duration_s=3.0, seed=s,
                              **kwargs) for s in range(n)]

    def test_failure_summary_has_counters(self):
        results = run_batch(self._configs(2), processes=1)
        summary = batch_failure_summary(results)
        assert summary["counters"] == {
            "batch.sessions_total": 2,
            "batch.sessions_succeeded": 2,
            "batch.sessions_failed": 0,
            "batch.retry_attempts": 0,
            "batch.timeouts": 0,
            "batch.worker_crashes": 0,
        }

    def test_progress_callback_called_per_session(self):
        seen = []
        run_batch(self._configs(3), processes=1,
                  progress=lambda done, total, entry:
                  seen.append((done, total, entry["app"])))
        assert seen == [(1, 3, "Facebook"), (2, 3, "Facebook"),
                        (3, 3, "Facebook")]

    def test_failed_sessions_feed_counters(self):
        # An unknown app fails inside the worker, is retried once, and
        # lands in the failure counters.
        configs = self._configs(1) + [
            SessionConfig(app="no-such-app", duration_s=3.0)]
        results = run_batch(configs, processes=1, retries=1)
        summary = batch_failure_summary(results)
        assert summary["counters"]["batch.sessions_failed"] == 1
        assert summary["counters"]["batch.retry_attempts"] == 1
        assert summary["counters"]["batch.timeouts"] == 0
