"""Tests for pixel-content renderers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphics.renderers import (
    FullScreenVideoRenderer,
    MovingSpritesRenderer,
    SceneChangeRenderer,
    ScrollRenderer,
    SmallRegionRenderer,
    StaticRenderer,
)
from repro.graphics.surface import Surface


@pytest.fixture
def surface():
    s = Surface(40, 30, name="test")
    s.pixels[:] = 128
    s.acknowledge_post()
    return s


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def changed_pixels(before, after):
    return int((before != after).any(axis=-1).sum())


class TestStaticRenderer:
    def test_changes_nothing(self, surface, rng):
        before = surface.pixels.copy()
        StaticRenderer().render(surface, rng)
        assert np.array_equal(surface.pixels, before)
        assert not surface.is_damaged


class TestScrollRenderer:
    def test_changes_pixels_and_damages(self, surface, rng):
        before = surface.pixels.copy()
        ScrollRenderer(scroll_px=4).render(surface, rng)
        assert changed_pixels(before, surface.pixels) > 0
        assert surface.is_damaged

    def test_shifts_content_up(self, surface, rng):
        surface.pixels[10, :] = 200
        before_row = surface.pixels[10].copy()
        ScrollRenderer(scroll_px=4).render(surface, rng)
        assert np.array_equal(surface.pixels[6], before_row)

    def test_scroll_larger_than_surface_clamped(self, rng):
        s = Surface(8, 4)
        ScrollRenderer(scroll_px=100).render(s, rng)  # must not raise

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ScrollRenderer(scroll_px=0)


class TestSceneChangeRenderer:
    def test_changes_large_area(self, surface, rng):
        before = surface.pixels.copy()
        SceneChangeRenderer(num_rects=4).render(surface, rng)
        frac = changed_pixels(before, surface.pixels) / (40 * 30)
        assert frac > 0.05

    def test_invalid_fracs(self):
        with pytest.raises(ConfigurationError):
            SceneChangeRenderer(min_frac=0.7, max_frac=0.5)
        with pytest.raises(ConfigurationError):
            SceneChangeRenderer(min_frac=0.0)


class TestFullScreenVideoRenderer:
    def test_replaces_whole_frame(self, surface, rng):
        before = surface.pixels.copy()
        FullScreenVideoRenderer(block_px=8).render(surface, rng)
        frac = changed_pixels(before, surface.pixels) / (40 * 30)
        assert frac > 0.9

    def test_consecutive_frames_differ(self, surface, rng):
        r = FullScreenVideoRenderer(block_px=8)
        r.render(surface, rng)
        first = surface.pixels.copy()
        r.render(surface, rng)
        assert changed_pixels(first, surface.pixels) > 0


class TestSmallRegionRenderer:
    def test_changes_only_region(self, surface, rng):
        before = surface.pixels.copy()
        SmallRegionRenderer(region_height=3, region_width=5,
                            y=2, x=4).render(surface, rng)
        diff = (before != surface.pixels).any(axis=-1)
        ys, xs = np.nonzero(diff)
        assert ys.min() >= 2 and ys.max() < 5
        assert xs.min() >= 4 and xs.max() < 9

    def test_region_outside_surface_rejected(self, rng):
        s = Surface(8, 8)
        r = SmallRegionRenderer(region_height=4, region_width=4, y=8, x=0)
        with pytest.raises(ConfigurationError):
            r.render(s, rng)


class TestMovingSpritesRenderer:
    def test_first_render_initialises_background(self, surface, rng):
        r = MovingSpritesRenderer(num_dots=3, dot_px=2, step_px=2,
                                  background=12)
        r.render(surface, rng)
        # Background everywhere except the dots.
        values = np.unique(surface.pixels)
        assert set(values.tolist()) <= {12, 255}

    def test_moves_change_bounded_area(self, surface, rng):
        r = MovingSpritesRenderer(num_dots=2, dot_px=2, step_px=4)
        r.render(surface, rng)
        before = surface.pixels.copy()
        r.render(surface, rng)
        changed = changed_pixels(before, surface.pixels)
        # At most 2 dots x (erase + draw) x dot area.
        assert 0 < changed <= 2 * 2 * (2 * 2)

    def test_full_step_keeps_old_and_new_disjoint(self, rng):
        s = Surface(100, 100)
        r = MovingSpritesRenderer(num_dots=1, dot_px=4, step_px=4)
        r.render(s, rng)
        before = s.pixels.copy()
        r.render(s, rng)
        changed = changed_pixels(before, s.pixels)
        # Away from borders the old and new areas are disjoint:
        # exactly 2 * dot area pixels change.
        if changed != 0:
            assert changed in (2 * 16, 16)  # 16 if clipped at a border

    def test_reset_reinitialises(self, surface, rng):
        r = MovingSpritesRenderer(num_dots=2, dot_px=2, step_px=2)
        r.render(surface, rng)
        r.reset()
        before = surface.pixels.copy()
        r.render(surface, rng)
        # Re-initialisation redraws the background + dots.
        assert changed_pixels(before, surface.pixels) >= 0
        assert surface.is_damaged

    def test_deterministic_given_rng(self):
        def run():
            s = Surface(40, 30)
            r = MovingSpritesRenderer(num_dots=3, dot_px=2, step_px=3)
            gen = np.random.default_rng(7)
            for _ in range(10):
                r.render(s, gen)
            return s.pixels.copy()

        assert np.array_equal(run(), run())

    def test_invalid_background_rejected(self):
        with pytest.raises(ConfigurationError):
            MovingSpritesRenderer(background=300)
