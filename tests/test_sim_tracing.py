"""Tests for trace containers (event logs, step series, time series)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.tracing import EventLog, StepSeries, TimeSeries, TraceSet


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        for t in (0.1, 0.5, 0.5, 2.0):
            log.append(t)
        assert len(log) == 4

    def test_times_array(self):
        log = EventLog()
        log.append(1.0)
        log.append(2.0)
        assert np.allclose(log.times, [1.0, 2.0])

    def test_backwards_time_rejected(self):
        log = EventLog()
        log.append(1.0)
        with pytest.raises(SimulationError):
            log.append(0.5)

    def test_count_in_half_open_window(self):
        log = EventLog()
        for t in (1.0, 2.0, 3.0):
            log.append(t)
        # (start, end]: excludes start boundary, includes end boundary.
        assert log.count_in(1.0, 3.0) == 2
        assert log.count_in(0.0, 3.0) == 3
        assert log.count_in(0.0, 0.5) == 0

    def test_adjacent_windows_partition_events(self):
        log = EventLog()
        for t in np.linspace(0.05, 9.95, 100):
            log.append(float(t))
        total = sum(log.count_in(i, i + 1.0) for i in range(10))
        assert total == 100

    def test_rate_in(self):
        log = EventLog()
        for t in (0.1, 0.2, 0.3, 0.4):
            log.append(t)
        assert log.rate_in(0.0, 2.0) == pytest.approx(2.0)

    def test_rate_in_empty_window_rejected(self):
        log = EventLog()
        with pytest.raises(SimulationError):
            log.rate_in(1.0, 1.0)

    def test_binned_rate_shape_and_values(self):
        log = EventLog()
        for t in (0.5, 1.5, 1.6):
            log.append(t)
        centers, rates = log.binned_rate(0.0, 2.0, 1.0)
        assert len(centers) == 2
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(2.0)

    def test_binned_rate_partial_trailing_bin(self):
        log = EventLog()
        log.append(2.25)
        centers, rates = log.binned_rate(0.0, 2.5, 1.0)
        assert len(centers) == 3
        # Trailing bin is 0.5 s wide, one event -> 2 events/s.
        assert rates[2] == pytest.approx(2.0)

    def test_count_in_inverted_window_rejected_with_context(self):
        log = EventLog("frame_updates")
        with pytest.raises(SimulationError) as excinfo:
            log.count_in(5.0, 2.0)
        err = excinfo.value
        assert "frame_updates" in str(err)
        assert err.context == {"log": "frame_updates",
                               "operation": "count_in",
                               "start": 5.0, "end": 2.0}

    def test_count_in_equal_bounds_is_empty_not_error(self):
        # end == start is a degenerate-but-valid half-open window:
        # (t, t] contains nothing.
        log = EventLog()
        log.append(1.0)
        assert log.count_in(1.0, 1.0) == 0

    def test_rate_in_inverted_window_context(self):
        log = EventLog("touches")
        with pytest.raises(SimulationError) as excinfo:
            log.rate_in(3.0, 1.0)
        assert excinfo.value.context["operation"] == "rate_in"
        assert excinfo.value.context["log"] == "touches"

    def test_binned_rate_inverted_window_rejected_with_context(self):
        log = EventLog("compositions")
        with pytest.raises(SimulationError) as excinfo:
            log.binned_rate(4.0, 1.0, bin_width=0.5)
        err = excinfo.value
        assert "compositions" in str(err)
        assert err.context == {"log": "compositions",
                               "operation": "binned_rate",
                               "start": 4.0, "end": 1.0,
                               "bin_width": 0.5}


class TestStepSeries:
    def test_initial_value(self):
        s = StepSeries(initial=60.0)
        assert s.current == 60.0
        assert s.value_at(0.0) == 60.0

    def test_transitions_hold_until_next(self):
        s = StepSeries(initial=60.0)
        s.set(1.0, 20.0)
        s.set(3.0, 40.0)
        assert s.value_at(0.5) == 60.0
        assert s.value_at(1.0) == 20.0
        assert s.value_at(2.999) == 20.0
        assert s.value_at(3.0) == 40.0
        assert s.value_at(100.0) == 40.0

    def test_same_timestamp_overwrites(self):
        s = StepSeries(initial=60.0)
        s.set(1.0, 20.0)
        s.set(1.0, 30.0)
        assert s.value_at(1.0) == 30.0
        times, values = s.transitions
        assert len(times) == 2  # initial + one (overwritten) transition

    def test_backwards_time_rejected(self):
        s = StepSeries()
        s.set(2.0, 1.0)
        with pytest.raises(SimulationError):
            s.set(1.0, 2.0)

    def test_query_before_start_rejected(self):
        s = StepSeries(start_time=5.0)
        with pytest.raises(SimulationError):
            s.value_at(4.0)

    def test_integrate_constant(self):
        s = StepSeries(initial=10.0)
        assert s.integrate(0.0, 4.0) == pytest.approx(40.0)

    def test_integrate_piecewise(self):
        s = StepSeries(initial=60.0)
        s.set(1.0, 20.0)
        # 1 s at 60 + 2 s at 20 = 100.
        assert s.integrate(0.0, 3.0) == pytest.approx(100.0)

    def test_integrate_partial_window(self):
        s = StepSeries(initial=60.0)
        s.set(1.0, 20.0)
        s.set(2.0, 40.0)
        # [0.5, 2.5]: 0.5 @ 60 + 1.0 @ 20 + 0.5 @ 40 = 70.
        assert s.integrate(0.5, 2.5) == pytest.approx(70.0)

    def test_integrate_is_additive(self):
        s = StepSeries(initial=5.0)
        s.set(0.7, 12.0)
        s.set(1.9, 3.0)
        whole = s.integrate(0.0, 4.0)
        split = s.integrate(0.0, 1.3) + s.integrate(1.3, 4.0)
        assert whole == pytest.approx(split)

    def test_mean(self):
        s = StepSeries(initial=60.0)
        s.set(1.0, 20.0)
        assert s.mean(0.0, 2.0) == pytest.approx(40.0)

    def test_sample(self):
        s = StepSeries(initial=1.0)
        s.set(1.0, 2.0)
        out = s.sample([0.5, 1.5])
        assert np.allclose(out, [1.0, 2.0])

    def test_integrate_end_before_start_rejected(self):
        s = StepSeries()
        with pytest.raises(SimulationError):
            s.integrate(2.0, 1.0)


class TestTimeSeries:
    def test_append_and_arrays(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        ts.append(2.0, 20.0)
        assert np.allclose(ts.times, [1.0, 2.0])
        assert np.allclose(ts.values, [10.0, 20.0])

    def test_backwards_time_rejected(self):
        ts = TimeSeries()
        ts.append(1.0, 0.0)
        with pytest.raises(SimulationError):
            ts.append(0.9, 0.0)

    def test_mean(self):
        ts = TimeSeries()
        for i in range(5):
            ts.append(float(i), float(i))
        assert ts.mean() == pytest.approx(2.0)

    def test_mean_of_empty_rejected(self):
        with pytest.raises(SimulationError):
            TimeSeries().mean()

    def test_binned_mean(self):
        ts = TimeSeries()
        ts.append(0.5, 10.0)
        ts.append(1.2, 20.0)
        ts.append(1.8, 40.0)
        centers, means = ts.binned_mean(0.0, 2.0, 1.0)
        assert means[0] == pytest.approx(10.0)
        assert means[1] == pytest.approx(30.0)

    def test_binned_mean_empty_bin_is_nan(self):
        ts = TimeSeries()
        ts.append(1.5, 10.0)
        _, means = ts.binned_mean(0.0, 2.0, 1.0)
        assert np.isnan(means[0])
        assert means[1] == pytest.approx(10.0)


class TestTraceSet:
    def test_lazy_creation_and_reuse(self):
        traces = TraceSet()
        log = traces.event_log("frames")
        assert traces.event_log("frames") is log
        step = traces.step_series("rate", initial=60.0)
        assert traces.step_series("rate") is step
        series = traces.time_series("content")
        assert traces.time_series("content") is series

    def test_name_listings(self):
        traces = TraceSet()
        traces.event_log("b")
        traces.event_log("a")
        traces.step_series("rate")
        traces.time_series("content")
        assert traces.event_log_names == ("a", "b")
        assert traces.step_series_names == ("rate",)
        assert traces.time_series_names == ("content",)
