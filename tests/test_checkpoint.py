"""Checkpoint/resume round-trip tests (`repro.sim.runner`).

The core property the durable service rests on: a session killed at
*any* frame boundary and resumed from its checkpoint produces a
summary byte-identical to an uninterrupted run.  The checkpoint
carries no simulator state — only the spec, the resume point, and a
state digest — so the property holds exactly when deterministic
replay holds; these tests sweep every boundary of a short session to
pin that down, for plain, faulted, and pooled execution.

Configs stay untelemetered: telemetry spans carry wall-clock times,
which are the one legitimately nondeterministic output.
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.faults.plan import FaultPlan
from repro.pipeline.spec import SessionSpec
from repro.sim.batch import run_batch, summarize_result
from repro.sim.runner import (
    CHECKPOINT_SCHEMA,
    SessionRunner,
    load_checkpoint,
    resume_from_file,
    resume_runner,
    validate_checkpoint,
)
from repro.sim.session import SessionConfig, run_session

FRAME_S = 1.0 / 60.0


def _config(duration_s=1.0, seed=0, faults=False):
    plan = (FaultPlan(panel_refuse=0.2, touch_drop=0.2, seed=seed)
            if faults else None)
    return SessionConfig(app="Jelly Splash", governor="section+boost",
                         duration_s=duration_s, seed=seed, faults=plan)


def _summary_bytes(result):
    return json.dumps(summarize_result(result), sort_keys=True)


class TestEveryFrameBoundary:
    @pytest.mark.parametrize("faults", [False, True],
                             ids=["plain", "faulted"])
    def test_resume_at_every_boundary_matches_uninterrupted(
            self, faults):
        config = _config(faults=faults)
        reference = _summary_bytes(run_session(config))
        boundaries = int(round(config.duration_s / FRAME_S))
        walker = SessionRunner(config)
        for index in range(1, boundaries):
            walker.advance(index * FRAME_S)
            document = walker.checkpoint_document()
            resumed = resume_runner(document)
            assert resumed.now == pytest.approx(walker.now)
            assert _summary_bytes(resumed.finish()) == reference, \
                f"divergence resuming at boundary {index}"
        # The walker itself — which advanced one frame at a time —
        # must also land on the identical summary.
        assert _summary_bytes(walker.finish()) == reference

    def test_resume_matches_pooled_batch_output(self):
        # The pooled path must agree with a checkpoint-resumed run:
        # summaries from run_batch workers are byte-identical to what
        # a kill-and-resume at an arbitrary boundary produces.
        configs = [_config(seed=s) for s in (0, 1)]
        pooled = run_batch(configs, workers=2, mp_context="fork",
                           chunksize=1)
        for config, expected in zip(configs, pooled):
            runner = SessionRunner(config)
            runner.advance(17 * FRAME_S)
            resumed = resume_runner(runner.checkpoint_document())
            assert _summary_bytes(resumed.finish()) == \
                json.dumps(expected, sort_keys=True)


class TestCheckpointFiles:
    def test_save_and_resume_from_file(self, tmp_path):
        config = _config()
        reference = _summary_bytes(run_session(config))
        runner = SessionRunner(config)
        runner.advance(0.25)
        path = tmp_path / "ckpt.json"
        runner.save_checkpoint(path, job_id="j1")
        document = load_checkpoint(path)
        assert document["schema"] == CHECKPOINT_SCHEMA
        assert document["job_id"] == "j1"
        resumed = resume_from_file(path)
        assert _summary_bytes(resumed.finish()) == reference

    def test_checkpoint_has_no_wall_clock_fields(self):
        runner = SessionRunner(_config())
        runner.advance(0.1)
        document = runner.checkpoint_document()
        assert set(document) == {"schema", "spec", "sim_time_s",
                                 "events_processed", "digest"}
        assert document["digest"].startswith("sha256:")

    def test_checkpoint_documents_are_deterministic(self):
        first = SessionRunner(_config())
        second = SessionRunner(_config())
        first.advance(0.25)
        second.advance(0.25)
        assert first.checkpoint_document() == \
            second.checkpoint_document()


class TestCheckpointValidation:
    def _document(self):
        runner = SessionRunner(_config())
        runner.advance(0.1)
        return runner.checkpoint_document()

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b"\x82\xa3not json at all")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_file_raises(self, tmp_path):
        runner = SessionRunner(_config())
        runner.advance(0.1)
        path = tmp_path / "ckpt.json"
        runner.save_checkpoint(path)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_key_rejected(self):
        document = self._document()
        del document["digest"]
        with pytest.raises(CheckpointError):
            validate_checkpoint(document, where="test")

    def test_unknown_key_rejected(self):
        document = self._document()
        document["extra"] = 1
        with pytest.raises(CheckpointError):
            validate_checkpoint(document, where="test")

    def test_wrong_schema_rejected(self):
        document = self._document()
        document["schema"] = "repro-checkpoint/99"
        with pytest.raises(CheckpointError):
            validate_checkpoint(document, where="test")

    def test_digest_lie_detected_on_resume(self):
        document = self._document()
        document["digest"] = "sha256:" + "0" * 64
        with pytest.raises(CheckpointError):
            resume_runner(document)

    def test_wrong_event_count_detected_on_resume(self):
        document = self._document()
        document["events_processed"] += 1
        with pytest.raises(CheckpointError):
            resume_runner(document)


class TestRunnerSemantics:
    def test_run_equals_run_session(self):
        config = _config()
        assert _summary_bytes(SessionRunner(config).run()) == \
            _summary_bytes(run_session(config))

    def test_spec_source_equivalent_to_config(self):
        config = _config()
        spec = SessionSpec.from_config(config)
        assert _summary_bytes(SessionRunner(spec.to_config()).run()) == \
            _summary_bytes(run_session(config))

    def test_advance_past_duration_clamps(self):
        runner = SessionRunner(_config())
        runner.advance(99.0)
        assert runner.now == pytest.approx(1.0)
        assert runner.done

    def test_finish_is_idempotent(self):
        runner = SessionRunner(_config())
        first = runner.finish()
        assert runner.finish() is first

    def test_checkpoint_after_finish_rejected(self):
        runner = SessionRunner(_config())
        runner.run()
        with pytest.raises(CheckpointError):
            runner.checkpoint_document()
