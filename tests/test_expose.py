"""Tests for the Prometheus text exposition layer
(`repro.telemetry.expose`).

Covers the naming/escaping rules, histogram expansion (cumulative
buckets, `+Inf` folding, inf/NaN edge cases), the round-trip parser
used as CI's well-formedness oracle, the merge-equivalence guarantee
(rendering `merge_snapshots` output equals rendering one registry
holding the combined values), the quantile estimator `repro top`
uses, and the offline snapshot builders behind
``repro stats --format prom``.
"""

import math

import pytest

from repro.errors import TelemetryError
from repro.telemetry.expose import (
    CONTENT_TYPE,
    escape_help,
    escape_label_value,
    format_value,
    histogram_quantile,
    parse_exposition,
    render_groups,
    render_registry,
    render_snapshot,
    sanitize_label_name,
    sanitize_metric_name,
    snapshot_from_bench,
    snapshot_from_events,
)
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots


def _registry(counters=(), gauges=(), histograms=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.counter(name).inc(value)
    for name, value in gauges:
        registry.gauge(name).set(value)
    for name, edges, observations in histograms:
        histogram = registry.histogram(name, edges)
        for value in observations:
            histogram.observe(value)
    return registry


class TestSanitization:
    def test_dots_become_underscores_with_prefix(self):
        assert sanitize_metric_name("panel.rate_switches") == \
            "repro_panel_rate_switches"

    def test_illegal_characters_replaced(self):
        assert sanitize_metric_name("a.b-c d/e") == "repro_a_b_c_d_e"

    def test_colons_survive_in_metric_names(self):
        assert sanitize_metric_name("a:b") == "repro_a:b"

    def test_leading_digit_guarded_without_prefix(self):
        assert sanitize_metric_name("9lives", prefix="")[0] == "_"

    def test_empty_name_rejected(self):
        with pytest.raises(TelemetryError):
            sanitize_metric_name("")

    def test_label_name_strips_colons(self):
        assert sanitize_label_name("a:b") == "a_b"

    def test_label_name_leading_digit(self):
        assert sanitize_label_name("0shard") == "_0shard"

    def test_empty_label_name_rejected(self):
        with pytest.raises(TelemetryError):
            sanitize_label_name("")

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_help_escaping_leaves_quotes(self):
        assert escape_help('say "hi"\n') == 'say "hi"\\n'


class TestFormatValue:
    @pytest.mark.parametrize("value,expected", [
        (float("inf"), "+Inf"),
        (float("-inf"), "-Inf"),
        (3.0, "3"),
        (-17, "-17"),
        (0.25, "0.25"),
    ])
    def test_rendering(self, value, expected):
        assert format_value(value) == expected

    def test_nan(self):
        assert format_value(float("nan")) == "NaN"


class TestRendering:
    def test_counter_gains_total_suffix(self):
        text = render_registry(_registry(counters=[("panel.vsyncs", 7)]))
        assert "# TYPE repro_panel_vsyncs_total counter" in text
        assert "repro_panel_vsyncs_total 7" in text

    def test_gauge_and_help_lines(self):
        text = render_registry(
            _registry(gauges=[("sim.duration_s", 30.0)]))
        assert "# HELP repro_sim_duration_s repro metric " \
               "sim.duration_s" in text
        assert "# TYPE repro_sim_duration_s gauge" in text
        assert "repro_sim_duration_s 30" in text

    def test_empty_registry_renders_empty_document(self):
        assert render_registry(MetricsRegistry()) == ""
        assert parse_exposition("") == {}

    def test_labels_rendered_sorted_and_escaped(self):
        text = render_snapshot(
            _registry(counters=[("service.jobs_done", 1)]).as_dict(),
            labels={"zeta": 'x"y', "alpha": "0"})
        assert ('repro_service_jobs_done_total'
                '{alpha="0",zeta="x\\"y"} 1') in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_registry(_registry(histograms=[
            ("span.stage_seconds", [0.1, 1.0], [0.05, 0.05, 0.5, 5.0]),
        ]))
        assert 'repro_span_stage_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_span_stage_seconds_bucket{le="1"} 3' in text
        assert 'repro_span_stage_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_span_stage_seconds_count 4" in text
        assert "repro_span_stage_seconds_sum 5.6" in text

    def test_explicit_inf_edge_folds_into_terminal_bucket(self):
        # A snapshot whose last edge is already +Inf must not emit two
        # +Inf buckets (the format forbids duplicate series).
        text = render_registry(_registry(histograms=[
            ("a.h", [1.0, math.inf], [0.5, 2.0]),
        ]))
        assert text.count('le="+Inf"') == 1
        parse_exposition(text)  # and the result is well-formed

    def test_nonfinite_gauge_values_render_and_parse(self):
        registry = _registry(gauges=[("a.up", math.inf),
                                     ("a.down", -math.inf)])
        families = parse_exposition(render_registry(registry))
        samples = families["repro_a_up"]["samples"]
        assert samples[("repro_a_up", ())] == math.inf
        samples = families["repro_a_down"]["samples"]
        assert samples[("repro_a_down", ())] == -math.inf

    def test_nan_gauge_round_trips(self):
        registry = _registry(gauges=[("a.weird", math.nan)])
        families = parse_exposition(render_registry(registry))
        assert math.isnan(
            families["repro_a_weird"]["samples"][("repro_a_weird", ())])

    def test_type_conflict_across_groups_rejected(self):
        counter = _registry(counters=[("x.n", 1)]).as_dict()
        gauge = _registry(gauges=[("x.n", 1.0)]).as_dict()
        with pytest.raises(TelemetryError):
            render_groups([(counter, None), (gauge, {"shard": "1"})])

    def test_duplicate_sample_rejected(self):
        snapshot = _registry(counters=[("x.n", 1)]).as_dict()
        with pytest.raises(TelemetryError):
            render_groups([(snapshot, None), (snapshot, None)])

    def test_shard_labels_share_one_type_block(self):
        shard0 = _registry(counters=[("worker.jobs", 2)]).as_dict()
        shard1 = _registry(counters=[("worker.jobs", 3)]).as_dict()
        text = render_groups([(shard0, {"shard": "0"}),
                              (shard1, {"shard": "1"})])
        assert text.count("# TYPE repro_worker_jobs_total counter") == 1
        assert 'repro_worker_jobs_total{shard="0"} 2' in text
        assert 'repro_worker_jobs_total{shard="1"} 3' in text

    def test_content_type_constant(self):
        assert CONTENT_TYPE == \
            "text/plain; version=0.0.4; charset=utf-8"


class TestMergeEquivalence:
    def test_merged_snapshots_render_like_one_registry(self):
        edges = [0.1, 1.0]
        first = _registry(counters=[("w.jobs", 2)],
                          gauges=[("w.depth", 4.0)],
                          histograms=[("span.s_seconds", edges,
                                       [0.05, 0.5])])
        second = _registry(counters=[("w.jobs", 3)],
                           gauges=[("w.depth", 1.0)],
                           histograms=[("span.s_seconds", edges,
                                        [2.0])])
        merged = merge_snapshots([first.as_dict(), second.as_dict()])
        equivalent = _registry(
            counters=[("w.jobs", 5)],
            gauges=[("w.depth", 1.0)],  # last write wins
            histograms=[("span.s_seconds", edges, [0.05, 0.5, 2.0])])
        assert render_snapshot(merged) == \
            render_snapshot(equivalent.as_dict())

    def test_merged_multi_worker_exposition_is_well_formed(self):
        snapshots = []
        for worker in range(4):
            registry = _registry(
                counters=[("w.done", worker + 1)],
                histograms=[("span.t_seconds", [0.01, 0.1],
                             [0.005 * (worker + 1)])])
            snapshots.append(registry.as_dict())
        families = parse_exposition(
            render_snapshot(merge_snapshots(snapshots)))
        assert families["repro_w_done_total"]["samples"][
            ("repro_w_done_total", ())] == 10
        assert families["repro_span_t_seconds"]["type"] == "histogram"


class TestParser:
    def test_round_trip_types_and_values(self):
        registry = _registry(
            counters=[("a.n", 12)], gauges=[("a.g", 2.5)],
            histograms=[("span.x_seconds", [0.5], [0.1, 0.9])])
        families = parse_exposition(render_registry(registry))
        assert families["repro_a_n_total"]["type"] == "counter"
        assert families["repro_a_g"]["type"] == "gauge"
        hist = families["repro_span_x_seconds"]
        assert hist["type"] == "histogram"
        assert hist["samples"][
            ("repro_span_x_seconds_bucket", (("le", "0.5"),))] == 1
        assert hist["samples"][
            ("repro_span_x_seconds_count", ())] == 2

    def test_duplicate_type_line_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("# TYPE m counter\n# TYPE m counter\nm 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("# TYPE m widget\n")

    def test_illegal_sample_name_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("9bad 1\n")

    def test_unparseable_value_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("m banana\n")

    def test_duplicate_sample_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("m 1\nm 2\n")

    def test_non_cumulative_buckets_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.5"} 5\n'
                'h_bucket{le="1"} 3\n'
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\n"
                "h_count 3\n")
        with pytest.raises(TelemetryError):
            parse_exposition(text)

    def test_inf_bucket_must_equal_count(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\n'
                "h_sum 1\n"
                "h_count 4\n")
        with pytest.raises(TelemetryError):
            parse_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="0.5"} 3\n'
                "h_sum 1\n"
                "h_count 3\n")
        with pytest.raises(TelemetryError):
            parse_exposition(text)

    def test_escaped_label_values_decode(self):
        families = parse_exposition(
            'm{a="x\\"y\\\\z\\nw"} 1\n')
        assert families["m"]["samples"][
            ("m", (("a", 'x"y\\z\nw'),))] == 1


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        assert histogram_quantile([1.0], [0, 0], 0.5) == 0.0

    def test_interpolates_within_bucket(self):
        # 10 observations uniformly in (0, 1]: p50 lands mid-bucket.
        assert histogram_quantile([1.0], [10, 0], 0.5) == \
            pytest.approx(0.5)

    def test_upper_buckets(self):
        edges = [0.1, 1.0]
        counts = [2, 6, 0]
        assert histogram_quantile(edges, counts, 0.25) == \
            pytest.approx(0.1)
        assert 0.1 < histogram_quantile(edges, counts, 0.9) <= 1.0

    def test_overflow_bucket_clamps_to_last_edge(self):
        assert histogram_quantile([0.1, 1.0], [0, 0, 5], 0.99) == 1.0

    def test_quantile_bounds_enforced(self):
        with pytest.raises(TelemetryError):
            histogram_quantile([1.0], [1, 0], 1.5)


class TestOfflineSnapshots:
    def test_events_become_counters_and_spans(self):
        events = [
            {"kind": "rate_switch", "session": "s1", "data": {}},
            {"kind": "rate_switch", "session": "s1", "data": {}},
            {"kind": "fault_injected", "session": "s2",
             "data": {"site": "panel_refuse"}},
            {"kind": "span", "session": "s1",
             "data": {"name": "meter.grid_compare",
                      "duration_s": 0.0005}},
        ]
        snapshot = snapshot_from_events(events)
        assert snapshot["counters"]["stream.events"] == 4
        assert snapshot["counters"]["stream.events.rate_switch"] == 2
        assert snapshot["counters"][
            "stream.faults.panel_refuse"] == 1
        assert snapshot["gauges"]["stream.sessions"] == 2
        hist = snapshot["histograms"][
            "span.meter.grid_compare_seconds"]
        assert hist["count"] == 1
        parse_exposition(render_snapshot(snapshot))

    def test_bench_document_becomes_gauges(self):
        bench = {"schema": "repro-bench/1", "cpu_count": 4,
                 "workers": 2,
                 "metrics": {"native_session_s": {
                     "value": 0.5, "unit": "s",
                     "higher_is_better": False}}}
        snapshot = snapshot_from_bench(bench)
        assert snapshot["gauges"]["bench.native_session_s"] == 0.5
        assert snapshot["gauges"]["bench.cpu_count"] == 4
        assert snapshot["gauges"]["bench.workers"] == 2

    def test_bench_without_metrics_rejected(self):
        with pytest.raises(TelemetryError):
            snapshot_from_bench({"schema": "repro-bench/1"})
