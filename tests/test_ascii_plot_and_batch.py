"""Tests for terminal plotting helpers and the parallel batch runner."""

import math

import pytest

import repro
from repro.analysis.ascii_plot import bar_chart, sparkline, timeline
from repro.errors import ConfigurationError
from repro.sim.batch import run_batch, run_session_summary
from repro.sim.session import SessionConfig


class TestSparkline:
    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series_lowest_level(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_pinned_scale(self):
        line = sparkline([30.0], lo=0.0, hi=60.0)
        assert line == "▅"  # midpoint rounds up to level 4 of 0-7

    def test_values_clipped_to_scale(self):
        line = sparkline([100.0, -5.0], lo=0.0, hi=60.0)
        assert line == "█▁"

    def test_nan_renders_as_space(self):
        assert sparkline([1.0, math.nan, 2.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    def test_inverted_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0], lo=10.0, hi=0.0)

    def test_length_preserved(self):
        assert len(sparkline(list(range(100)))) == 100


class TestBarChart:
    def test_rows_and_scaling(self):
        chart = bar_chart(["a", "bb"], [10.0, 20.0], width=10,
                          unit=" mW")
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10
        assert "20.0 mW" in lines[1]

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1.0, 2.0], width=5)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_negative_value_empty_bar(self):
        chart = bar_chart(["neg", "pos"], [-3.0, 6.0], width=6)
        lines = chart.splitlines()
        assert "█" not in lines[0]
        assert "-3.0" in lines[0]

    def test_nonzero_value_gets_at_least_one_block(self):
        chart = bar_chart(["tiny", "huge"], [0.1, 1000.0], width=10)
        assert chart.splitlines()[0].count("█") == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart([], [])


class TestTimeline:
    def test_maps_to_nearest_level(self):
        line = timeline([20, 24, 30, 40, 60],
                        levels=[20, 24, 30, 40, 60])
        assert line == "_.-=#"

    def test_nearest_rounding(self):
        line = timeline([21.0, 59.0], levels=[20, 24, 30, 40, 60])
        assert line == "_#"

    def test_too_few_symbols_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline([1.0], levels=[1, 2, 3], symbols="ab")

    def test_no_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            timeline([1.0], levels=[])


class TestBatch:
    def _configs(self, n=3):
        return [SessionConfig(app="Facebook", governor="fixed",
                              duration_s=5.0, seed=seed)
                for seed in range(1, n + 1)]

    def test_summaries_in_order(self):
        summaries = run_batch(self._configs(), processes=1)
        assert len(summaries) == 3
        assert [s["seed"] for s in summaries] == [1, 2, 3]
        for summary in summaries:
            assert summary["mean_power_mw"] > 0
            assert len(summary["trace"]["time_s"]) == 5

    def test_parallel_matches_serial(self):
        configs = self._configs(2)
        serial = run_batch(configs, processes=1)
        parallel = run_batch(configs, processes=2)
        for a, b in zip(serial, parallel):
            assert a["mean_power_mw"] == pytest.approx(
                b["mean_power_mw"])
            assert a["content_rate_fps"] == pytest.approx(
                b["content_rate_fps"])

    def test_summary_matches_direct_run(self):
        config = self._configs(1)[0]
        summary = run_session_summary(config)
        result = repro.run_session(config)
        assert summary["mean_power_mw"] == pytest.approx(
            result.power_report().mean_power_mw)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch([])

    def test_invalid_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(self._configs(1), processes=0)
