"""Tests for touch-to-display latency analysis."""

import pytest

from repro.analysis.latency import (
    session_touch_latency,
    touch_response_latencies,
)
from repro.errors import ConfigurationError


class TestTouchResponseLatencies:
    def test_simple_pairing(self):
        report = touch_response_latencies(
            touch_times=[1.0, 5.0],
            meaningful_frame_times=[1.05, 2.0, 5.2])
        assert report.touches == 2
        assert report.unanswered == 0
        assert report.latencies_s == pytest.approx([0.05, 0.2])

    def test_frame_before_touch_not_counted(self):
        report = touch_response_latencies(
            touch_times=[2.0],
            meaningful_frame_times=[1.9, 2.3])
        assert report.latencies_s == pytest.approx([0.3])

    def test_frame_at_touch_instant_not_counted(self):
        # A frame at exactly the touch time cannot be a response.
        report = touch_response_latencies(
            touch_times=[2.0],
            meaningful_frame_times=[2.0, 2.4])
        assert report.latencies_s == pytest.approx([0.4])

    def test_timeout_marks_unanswered(self):
        report = touch_response_latencies(
            touch_times=[1.0, 10.0],
            meaningful_frame_times=[1.1],
            timeout_s=2.0)
        assert report.answered == 1
        assert report.unanswered == 1

    def test_no_frames_all_unanswered(self):
        report = touch_response_latencies([1.0, 2.0], [])
        assert report.unanswered == 2
        with pytest.raises(ConfigurationError):
            report.mean_s

    def test_statistics(self):
        report = touch_response_latencies(
            touch_times=[0.0, 1.0, 2.0, 3.0],
            meaningful_frame_times=[0.1, 1.2, 2.3, 3.4])
        assert report.mean_s == pytest.approx(0.25)
        assert report.worst_s == pytest.approx(0.4)
        assert report.p95_s <= report.worst_s + 1e-12

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            touch_response_latencies([1.0], [1.1], timeout_s=0.0)

    def test_unsorted_frame_times_handled(self):
        report = touch_response_latencies(
            touch_times=[1.0],
            meaningful_frame_times=[5.0, 1.2, 3.0])
        assert report.latencies_s == pytest.approx([0.2])


class TestSessionLatency:
    def test_session_report(self):
        import repro
        result = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section+boost", duration_s=30.0,
            seed=3))
        report = session_touch_latency(result)
        assert report.touches == len(result.touch_script)
        if report.answered:
            # Response latency is bounded by burst content gaps plus
            # one V-Sync slot: well under a quarter second.
            assert report.mean_s < 0.25

    def test_governors_comparable_first_response(self):
        """Honest finding: because panel mode switches land at frame
        boundaries, the *first* response frame after a touch is barely
        faster with boosting — the boost pays off in sustained
        tracking (quality), not first response."""
        import repro
        reports = {}
        for governor in ("fixed", "section+boost"):
            result = repro.run_session(repro.SessionConfig(
                app="Facebook", governor=governor, duration_s=40.0,
                seed=3))
            reports[governor] = session_touch_latency(result)
        fixed = reports["fixed"]
        boosted = reports["section+boost"]
        if fixed.answered and boosted.answered:
            assert boosted.mean_s < fixed.mean_s + 0.15
