"""Tests for application profiles, the catalog, and app behaviour."""

import numpy as np
import pytest

from repro.apps.base import Application
from repro.apps.catalog import (
    GAME_APP_NAMES,
    GENERAL_APP_NAMES,
    all_app_names,
    app_profile,
    profiles_by_category,
)
from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.apps.wallpaper import LiveWallpaper, nexus_revamped
from repro.errors import ConfigurationError, WorkloadError
from repro.graphics.compositor import SurfaceManager
from repro.graphics.framebuffer import Framebuffer
from repro.graphics.surface import Surface
from repro.inputs.touch import TouchEvent, TouchKind
from repro.sim.engine import Simulator


def make_app(profile, seed=0):
    sim = Simulator()
    fb = Framebuffer(48, 36)
    compositor = SurfaceManager(fb)
    surface = Surface(48, 36, name=profile.name)
    compositor.register_surface(surface)
    app = Application(profile, sim, compositor, surface, seed=seed)
    return sim, fb, compositor, app


def simple_profile(**overrides):
    defaults = dict(
        name="test-app", category=AppCategory.GENERAL,
        idle_content_fps=2.0, active_content_fps=20.0,
        idle_submit_fps=0.0, render_style=RenderStyle.SCENE,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


def drive_vsyncs(sim, app, compositor, duration, rate=60.0):
    """Manually drive vsync callbacks at a fixed rate."""
    period = 1.0 / rate
    n = int(duration / period)
    for i in range(1, n + 1):
        t = i * period

        def tick(s, t=t):
            app.on_vsync(t)
            compositor.on_vsync(t)

        sim.call_at(t, tick)
    sim.run_until(duration + 1e-9)


class TestAppProfile:
    def test_valid_profile(self):
        p = simple_profile()
        assert not p.is_game

    def test_active_below_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_profile(idle_content_fps=10.0, active_content_fps=5.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_profile(name="")

    def test_bad_scroll_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_profile(scroll_fraction=2.0)

    @pytest.mark.parametrize("style", list(RenderStyle))
    def test_every_style_makes_a_renderer(self, style):
        p = simple_profile(render_style=style)
        renderer = p.make_renderer()
        assert hasattr(renderer, "render")


class TestCatalog:
    def test_thirty_apps_fifteen_each(self):
        assert len(GENERAL_APP_NAMES) == 15
        assert len(GAME_APP_NAMES) == 15
        assert len(all_app_names()) == 30
        assert len(set(all_app_names())) == 30

    def test_paper_trace_apps_present(self):
        assert "Facebook" in GENERAL_APP_NAMES
        assert "Jelly Splash" in GAME_APP_NAMES

    def test_paper_named_redundant_apps_present(self):
        # Cash Slide and Daum Maps are named in Figure 3(d); CGV in
        # the Figure 9 discussion.
        for name in ("Cash Slide", "Daum Maps", "CGV"):
            assert name in GENERAL_APP_NAMES

    def test_lookup(self):
        p = app_profile("Facebook")
        assert p.category is AppCategory.GENERAL

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError):
            app_profile("Angry Birds")

    def test_profiles_by_category(self):
        generals = profiles_by_category(AppCategory.GENERAL)
        games = profiles_by_category(AppCategory.GAME)
        assert len(generals) == len(games) == 15
        assert all(not p.is_game for p in generals)
        assert all(p.is_game for p in games)

    def test_games_submit_redundantly(self):
        # Figure 3: games run free-running loops; 80 % should have
        # submit rates far above their content rates.
        games = profiles_by_category(AppCategory.GAME)
        heavy = [g for g in games if g.idle_submit_fps >= 30.0]
        assert len(heavy) >= 12

    def test_general_apps_mostly_modest_content(self):
        generals = profiles_by_category(AppCategory.GENERAL)
        low = [g for g in generals if g.idle_content_fps < 30.0]
        assert len(low) == 15


class TestApplicationContentProcess:
    def test_idle_content_rate_statistical(self):
        profile = simple_profile(idle_content_fps=5.0)
        sim, fb, comp, app = make_app(profile, seed=3)
        app.start()
        sim.run_until(60.0)
        rate = len(app.content_changes) / 60.0
        assert 3.5 < rate < 6.5

    def test_zero_idle_rate_produces_no_content(self):
        profile = simple_profile(idle_content_fps=0.0)
        sim, fb, comp, app = make_app(profile)
        app.start()
        sim.run_until(30.0)
        assert len(app.content_changes) == 0

    def test_periodic_process_is_exact(self):
        profile = simple_profile(idle_content_fps=10.0,
                                 active_content_fps=10.0,
                                 content_process=ContentProcess.PERIODIC)
        sim, fb, comp, app = make_app(profile)
        app.start()
        sim.run_until(5.0)
        assert len(app.content_changes) == 50

    def test_animation_process_near_nominal(self):
        profile = simple_profile(idle_content_fps=10.0,
                                 active_content_fps=10.0,
                                 content_process=ContentProcess.ANIMATION)
        sim, fb, comp, app = make_app(profile, seed=1)
        app.start()
        sim.run_until(20.0)
        rate = len(app.content_changes) / 20.0
        assert 9.0 < rate < 11.0

    def test_animation_gaps_never_bunch(self):
        profile = simple_profile(idle_content_fps=10.0,
                                 active_content_fps=10.0,
                                 content_process=ContentProcess.ANIMATION)
        sim, fb, comp, app = make_app(profile, seed=2)
        app.start()
        sim.run_until(10.0)
        gaps = np.diff(app.content_changes.times)
        assert gaps.min() >= 0.085 - 1e-9

    def test_touch_elevates_content_rate(self):
        profile = simple_profile(idle_content_fps=0.0,
                                 active_content_fps=30.0,
                                 burst_duration_s=1.0)
        sim, fb, comp, app = make_app(profile, seed=4)
        app.start()
        sim.call_at(5.0, lambda s: app.on_touch(TouchEvent(5.0)))
        sim.run_until(10.0)
        times = app.content_changes.times
        assert len(times) > 10
        assert times.min() >= 5.0
        assert times.max() <= 6.3  # burst window + one stale gap

    def test_scroll_extends_burst_by_duration(self):
        profile = simple_profile(idle_content_fps=0.0,
                                 active_content_fps=30.0,
                                 burst_duration_s=1.0)
        sim, fb, comp, app = make_app(profile, seed=4)
        app.start()
        scroll = TouchEvent(5.0, kind=TouchKind.SCROLL, duration_s=2.0)
        sim.call_at(5.0, lambda s: app.on_touch(scroll))
        sim.run_until(10.0)
        assert app.interacting(7.5)
        assert not app.interacting(8.1)

    def test_same_seed_same_content_stream(self):
        def run():
            profile = simple_profile(idle_content_fps=8.0)
            sim, fb, comp, app = make_app(profile, seed=9)
            app.start()
            sim.run_until(30.0)
            return tuple(app.content_changes.times)

        assert run() == run()


class TestApplicationRenderLoop:
    def test_on_change_app_posts_only_on_content(self):
        profile = simple_profile(idle_content_fps=2.0,
                                 idle_submit_fps=0.0)
        sim, fb, comp, app = make_app(profile, seed=5)
        app.start()
        drive_vsyncs(sim, app, comp, 10.0)
        # Posts should track content changes (minus coalescing).
        assert len(app.submissions) <= len(app.content_changes)
        assert len(app.submissions) >= len(app.content_changes) * 0.6
        assert comp.redundant_compositions == 0

    def test_free_running_app_posts_every_vsync(self):
        profile = simple_profile(idle_content_fps=0.5,
                                 idle_submit_fps=60.0)
        sim, fb, comp, app = make_app(profile, seed=5)
        app.start()
        drive_vsyncs(sim, app, comp, 5.0)
        assert len(app.submissions) == pytest.approx(300, abs=3)
        assert comp.redundant_compositions > 250

    def test_throttled_idle_submit(self):
        profile = simple_profile(idle_content_fps=0.0,
                                 idle_submit_fps=10.0)
        sim, fb, comp, app = make_app(profile)
        app.start()
        drive_vsyncs(sim, app, comp, 5.0)
        assert len(app.submissions) == pytest.approx(50, abs=2)

    def test_coalescing_counts_lost_changes(self):
        # 60 fps periodic content driven at 20 Hz vsync: two of every
        # three changes coalesce.
        profile = simple_profile(idle_content_fps=60.0,
                                 active_content_fps=60.0,
                                 content_process=ContentProcess.PERIODIC)
        sim, fb, comp, app = make_app(profile)
        app.start()
        drive_vsyncs(sim, app, comp, 3.0, rate=20.0)
        assert app.coalesced_changes > 100
        assert len(app.submissions) == pytest.approx(60, abs=2)

    def test_double_start_rejected(self):
        profile = simple_profile()
        _, _, _, app = make_app(profile)
        app.start()
        with pytest.raises(WorkloadError):
            app.start()

    def test_vsync_before_start_is_noop(self):
        profile = simple_profile()
        sim, fb, comp, app = make_app(profile)
        app.on_vsync(0.1)
        assert len(app.submissions) == 0


class TestWallpaper:
    def test_nexus_revamped_profile(self):
        wp = nexus_revamped()
        assert wp.frame_fps == 20.0
        assert not wp.full_screen
        profile = wp.as_app_profile()
        assert profile.content_process is ContentProcess.PERIODIC
        assert profile.idle_submit_fps == 0.0

    def test_wallpaper_renders_small_changes(self):
        sim = Simulator()
        fb = Framebuffer(96, 96)
        comp = SurfaceManager(fb)
        surface = Surface(96, 96, name="wp")
        comp.register_surface(surface)
        wp = LiveWallpaper(nexus_revamped(num_dots=2, dot_px=4,
                                          step_px=4),
                           sim, comp, surface, seed=0)
        wp.start()
        drive_vsyncs(sim, wp, comp, 2.0)
        # Periodic 20 fps content for 2 s -> ~40 meaningful frames.
        assert comp.meaningful_compositions >= 35

    def test_invalid_wallpaper_rate_rejected(self):
        from repro.apps.wallpaper import WallpaperProfile
        with pytest.raises(ConfigurationError):
            WallpaperProfile(name="bad", frame_fps=90.0)
