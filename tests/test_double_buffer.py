"""Tests for double buffering (full-frame and sampled variants)."""

import numpy as np
import pytest

from repro.core.double_buffer import DoubleBuffer, SampledDoubleBuffer
from repro.core.grid import GridSpec
from repro.errors import MeteringError


def frame(value, shape=(12, 10, 3)):
    return np.full(shape, value, dtype=np.uint8)


class TestDoubleBuffer:
    def test_no_previous_before_first_capture(self):
        buf = DoubleBuffer((12, 10, 3))
        assert buf.previous is None

    def test_previous_returns_last_capture(self):
        buf = DoubleBuffer((12, 10, 3))
        buf.capture(frame(1))
        assert (buf.previous == 1).all()
        buf.capture(frame(2))
        assert (buf.previous == 2).all()

    def test_captured_frame_survives_source_mutation(self):
        buf = DoubleBuffer((12, 10, 3))
        src = frame(1)
        buf.capture(src)
        src[:] = 99
        assert (buf.previous == 1).all()

    def test_two_slots_deep(self):
        # The slot holding capture N stays valid while capture N+1 is
        # written (the asynchronous-I/O property of Section 3.1).
        buf = DoubleBuffer((12, 10, 3))
        buf.capture(frame(1))
        old = buf.previous
        buf.capture(frame(2))
        assert (old == 1).all()  # untouched by the second capture

    def test_capture_counter_and_bytes(self):
        buf = DoubleBuffer((12, 10, 3))
        buf.capture(frame(1))
        buf.capture(frame(2))
        assert buf.captures == 2
        assert buf.bytes_copied == 2 * 12 * 10 * 3

    def test_shape_mismatch_rejected(self):
        buf = DoubleBuffer((12, 10, 3))
        with pytest.raises(MeteringError):
            buf.capture(frame(1, shape=(10, 12, 3)))

    def test_non_image_shape_rejected(self):
        with pytest.raises(MeteringError):
            DoubleBuffer((10,))


class TestSampledDoubleBuffer:
    def _grid(self):
        return GridSpec((12, 10), 3, 2)

    def test_stores_grid_samples_only(self):
        buf = SampledDoubleBuffer(self._grid())
        buf.capture(frame(7))
        assert buf.previous.shape == (3, 2, 3)
        assert (buf.previous == 7).all()

    def test_bandwidth_is_fraction_of_full(self):
        grid = self._grid()
        sampled = SampledDoubleBuffer(grid)
        full = DoubleBuffer((12, 10, 3))
        sampled.capture(frame(1))
        full.capture(frame(1))
        assert sampled.bytes_copied == grid.sample_count * 3
        assert sampled.bytes_copied < full.bytes_copied

    def test_no_previous_before_capture(self):
        buf = SampledDoubleBuffer(self._grid())
        assert buf.previous is None

    def test_compatible_with_comparator(self):
        from repro.core.grid import GridComparator
        grid = self._grid()
        buf = SampledDoubleBuffer(grid)
        comp = GridComparator(grid)
        buf.capture(frame(7))
        assert comp.frames_equal(frame(7), buf.previous)
        assert not comp.frames_equal(frame(8), buf.previous)

    def test_wrong_shape_rejected(self):
        buf = SampledDoubleBuffer(self._grid())
        with pytest.raises(MeteringError):
            buf.capture(frame(1, shape=(13, 10, 3)))
