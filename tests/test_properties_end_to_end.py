"""Property-based tests on full-pipeline invariants.

Short sessions (4-8 s) under hypothesis-generated profiles and
configurations.  These are the invariants the paper's argument rests
on, checked across a space of workloads rather than at hand-picked
points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.power.calibration import PowerCalibration
from repro.power.model import PowerModel
from repro.sim.session import SessionConfig, run_session

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

profiles = st.builds(
    AppProfile,
    name=st.just("prop-app"),
    category=st.sampled_from(list(AppCategory)),
    idle_content_fps=st.floats(min_value=0.0, max_value=20.0),
    active_content_fps=st.floats(min_value=20.0, max_value=60.0),
    burst_duration_s=st.floats(min_value=0.5, max_value=3.0),
    content_process=st.sampled_from(list(ContentProcess)),
    idle_submit_fps=st.sampled_from([0.0, 10.0, 30.0, 60.0]),
    render_style=st.sampled_from([RenderStyle.SCENE,
                                  RenderStyle.SCROLL,
                                  RenderStyle.VIDEO]),
    render_cost_mj=st.floats(min_value=0.5, max_value=6.0),
    cpu_base_mw=st.floats(min_value=50.0, max_value=400.0),
    touch_events_per_s=st.floats(min_value=0.0, max_value=0.5),
    scroll_fraction=st.floats(min_value=0.0, max_value=0.6),
)

seeds = st.integers(min_value=0, max_value=2**16)

#: Power model with zero metering overhead, so the governed-never-
#: costs-more property is exact (the overhead is the one legitimate
#: way a governed run can exceed the baseline by epsilon).
NO_OVERHEAD = PowerModel(PowerCalibration(
    meter_overhead_mj_per_frame=0.0))

DURATION = 6.0


def run(profile, governor, seed):
    return run_session(SessionConfig(
        app=profile, governor=governor, duration_s=DURATION,
        seed=seed))


class TestGovernedNeverCostsMore:
    @given(profile=profiles, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_section_power_at_most_fixed(self, profile, seed):
        base = run(profile, "fixed", seed)
        governed = run(profile, "section", seed)
        p_base = base.power_report(NO_OVERHEAD).mean_power_mw
        p_gov = governed.power_report(NO_OVERHEAD).mean_power_mw
        assert p_gov <= p_base + 1e-6


class TestRefreshAlwaysAPanelLevel:
    @given(profile=profiles, seed=seeds,
           governor=st.sampled_from(["section", "section+boost",
                                     "naive", "e3"]))
    @settings(max_examples=15, deadline=None)
    def test_every_transition_is_a_supported_rate(self, profile, seed,
                                                  governor):
        result = run(profile, governor, seed)
        levels = set(result.panel.spec.refresh_rates_hz)
        _, rates = result.panel.rate_history.transitions
        assert set(rates.tolist()) <= levels


class TestMeterNeverInvents:
    @given(profile=profiles, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_measured_at_most_displayed(self, profile, seed):
        """The grid meter can miss changes, never invent them: its
        meaningful count is bounded by the compositor's full-buffer
        ground truth."""
        result = run(profile, "section+boost", seed)
        assert result.meter.total_meaningful <= \
            len(result.meaningful_compositions)

    @given(profile=profiles, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_meaningful_at_most_frames(self, profile, seed):
        result = run(profile, "fixed", seed)
        assert result.meter.total_meaningful <= \
            result.meter.total_frames


class TestWorkloadInvariance:
    @given(profile=profiles, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_content_stream_identical_across_governors(self, profile,
                                                       seed):
        streams = []
        for governor in ("fixed", "section+boost", "naive"):
            result = run(profile, governor, seed)
            streams.append(tuple(
                result.application.content_changes.times))
        assert streams[0] == streams[1] == streams[2]


class TestEnergyAccounting:
    @given(profile=profiles, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_trace_mean_matches_report(self, profile, seed):
        result = run(profile, "section", seed)
        import numpy as np
        _, power = result.power_trace(bin_width_s=1.0)
        assert float(np.mean(power)) == \
            __import__("pytest").approx(
                result.power_report().mean_power_mw, rel=1e-6)

    @given(profile=profiles, seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_components_non_negative(self, profile, seed):
        result = run(profile, "section+boost", seed)
        for name, value in \
                result.power_report().component_power_mw().items():
            assert value >= 0.0, name
