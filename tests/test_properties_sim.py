"""Property-based tests for the simulation substrate and traces."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.tracing import EventLog, StepSeries

times = st.lists(st.floats(min_value=0.0, max_value=100.0,
                           allow_nan=False),
                 min_size=0, max_size=50)

transitions = st.lists(
    st.tuples(st.floats(min_value=0.001, max_value=100.0,
                        allow_nan=False),
              st.floats(min_value=0.0, max_value=1000.0,
                        allow_nan=False)),
    min_size=0, max_size=20,
)


class TestEngineProperties:
    @given(schedule=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                       allow_nan=False),
                             min_size=0, max_size=40))
    def test_events_fire_in_nondecreasing_time_order(self, schedule):
        sim = Simulator()
        fired = []
        for t in schedule:
            sim.call_at(t, lambda s: fired.append(s.now))
        sim.run_until(20.0)
        assert fired == sorted(fired)
        assert len(fired) == len(schedule)

    @given(schedule=st.lists(st.floats(min_value=0.0, max_value=10.0,
                                       allow_nan=False),
                             min_size=1, max_size=40),
           horizon=st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False))
    def test_run_until_fires_exactly_events_within_horizon(
            self, schedule, horizon):
        sim = Simulator()
        fired = []
        for t in schedule:
            sim.call_at(t, lambda s: fired.append(s.now))
        sim.run_until(horizon)
        assert len(fired) == sum(1 for t in schedule if t <= horizon)
        assert sim.now == horizon


class TestEventLogProperties:
    @given(ts=times)
    def test_windowed_counts_partition(self, ts):
        log = EventLog()
        for t in sorted(ts):
            log.append(t)
        # Partition (0, 100] into 10 windows; events at exactly 0 are
        # excluded by the half-open convention, so count them apart.
        at_zero = sum(1 for t in ts if t == 0.0)
        total = sum(log.count_in(i * 10.0, (i + 1) * 10.0)
                    for i in range(10))
        assert total + at_zero == len(ts)

    @given(ts=times, start=st.floats(min_value=0.0, max_value=100.0),
           width=st.floats(min_value=0.1, max_value=50.0))
    def test_count_never_negative_and_bounded(self, ts, start, width):
        log = EventLog()
        for t in sorted(ts):
            log.append(t)
        count = log.count_in(start, start + width)
        assert 0 <= count <= len(ts)


class TestStepSeriesProperties:
    @given(trans=transitions, initial=st.floats(min_value=0.0,
                                                max_value=1000.0))
    def test_integral_additivity(self, trans, initial):
        s = StepSeries(initial=initial)
        for dt, value in trans:
            s.set(s.transitions[0][-1] + dt, value)
        end = s.transitions[0][-1] + 1.0
        whole = s.integrate(0.0, end)
        mid = end / 2.0
        split = s.integrate(0.0, mid) + s.integrate(mid, end)
        assert np.isclose(whole, split, rtol=1e-9, atol=1e-6)

    @given(trans=transitions, initial=st.floats(min_value=0.0,
                                                max_value=1000.0))
    def test_mean_bounded_by_extremes(self, trans, initial):
        s = StepSeries(initial=initial)
        values = [initial]
        for dt, value in trans:
            s.set(s.transitions[0][-1] + dt, value)
            values.append(value)
        end = s.transitions[0][-1] + 1.0
        mean = s.mean(0.0, end)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(trans=transitions, initial=st.floats(min_value=0.0,
                                                max_value=1000.0),
           query=st.floats(min_value=0.0, max_value=200.0))
    def test_value_at_matches_last_transition_before(self, trans,
                                                     initial, query):
        s = StepSeries(initial=initial)
        applied = [(0.0, initial)]
        for dt, value in trans:
            t = applied[-1][0] + dt
            s.set(t, value)
            applied.append((t, value))
        expected = [v for t, v in applied if t <= query][-1] \
            if query >= 0.0 else initial
        assert s.value_at(query) == expected


class TestMonkeyProperties:
    @given(seed=st.integers(0, 2**32 - 1),
           rate=st.floats(min_value=0.05, max_value=3.0),
           duration=st.floats(min_value=5.0, max_value=120.0))
    @settings(max_examples=30)
    def test_scripts_well_formed(self, seed, rate, duration):
        from repro.inputs.monkey import MonkeyConfig, MonkeyScriptGenerator
        cfg = MonkeyConfig(duration_s=duration, events_per_s=rate)
        script = MonkeyScriptGenerator(cfg).generate(seed)
        ts = script.times
        assert all(0.0 <= t < duration for t in ts)
        assert list(ts) == sorted(ts)
        for e in script.scrolls():
            assert e.time + e.duration_s <= duration + 1e-6
