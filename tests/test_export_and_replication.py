"""Tests for trace export and multi-seed replication."""

import csv
import json

import pytest

import repro
from repro.analysis.export import (
    json_sanitize,
    session_summary_dict,
    write_events_csv,
    write_session_json,
    write_trace_csv,
)
from repro.errors import ConfigurationError
from repro.experiments.replication import (
    ReplicatedComparison,
    replicate_comparison,
)


@pytest.fixture(scope="module")
def result():
    return repro.run_session(repro.SessionConfig(
        app="Facebook", governor="section+boost", duration_s=12.0,
        seed=2))


class TestSummaryDict:
    def test_fields(self, result):
        summary = session_summary_dict(result)
        assert summary["app"] == "Facebook"
        assert summary["governor"] == "section-based+touch-boost"
        assert summary["duration_s"] == 12.0
        assert summary["mean_power_mw"] > 0
        assert 0.0 <= summary["display_quality"] <= 1.0
        assert set(summary["component_power_mw"]) == {
            "base", "panel", "compose", "render", "meter", "emission"}

    def test_json_roundtrip(self, result, tmp_path):
        path = write_session_json(result, tmp_path / "session.json")
        loaded = json.loads(path.read_text())
        assert loaded == session_summary_dict(result)


class TestJsonSanitize:
    def test_non_finite_floats_become_null(self):
        document = {"a": float("inf"), "b": float("-inf"),
                    "c": float("nan"), "d": 1.5,
                    "nested": [{"e": float("inf")}, (2.0, float("nan"))]}
        clean = json_sanitize(document)
        assert clean == {"a": None, "b": None, "c": None, "d": 1.5,
                         "nested": [{"e": None}, [2.0, None]]}
        # The result must serialize under strict-JSON rules.
        json.dumps(clean, allow_nan=False)

    def test_non_float_values_pass_through(self):
        document = {"s": "inf", "i": 7, "b": True, "n": None}
        assert json_sanitize(document) == document

    def test_metering_error_can_be_infinite(self):
        from repro.core.quality import QualityReport
        report = QualityReport(duration_s=1.0, actual_content_fps=5.0,
                               displayed_content_fps=0.0,
                               measured_content_fps=5.0)
        assert report.metering_error == float("inf")

    def test_infinite_metric_exports_as_null(self, result, tmp_path):
        """A session whose metering error is infinite must still
        produce strict JSON — ``Infinity`` is not a JSON token."""
        from repro.core.quality import QualityReport
        result = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section+boost", duration_s=3.0,
            seed=4))
        # Shadow the report with the pathological corner: measured
        # content with zero displayed content.
        result.quality_report = lambda: QualityReport(
            duration_s=3.0, actual_content_fps=5.0,
            displayed_content_fps=0.0, measured_content_fps=5.0)
        path = write_session_json(result, tmp_path / "inf.json")
        text = path.read_text()
        assert "Infinity" not in text

        def reject(token):
            raise AssertionError(f"non-JSON token {token!r} in export")

        loaded = json.loads(text, parse_constant=reject)
        assert loaded["metering_error"] is None
        assert loaded["display_quality"] == 0.0


class TestTraceCsv:
    def test_columns_and_rows(self, result, tmp_path):
        path = write_trace_csv(result, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["time_s", "frame_rate_fps",
                           "content_rate_fps", "measured_content_fps",
                           "refresh_hz", "power_mw"]
        assert len(rows) - 1 == 12  # one per 1 s bin
        for row in rows[1:]:
            assert len(row) == 6
            float(row[0])  # parseable

    def test_refresh_values_are_panel_levels(self, result, tmp_path):
        path = write_trace_csv(result, tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))[1:]
        levels = set(repro.GALAXY_S3_PANEL.refresh_rates_hz)
        for row in rows:
            assert float(row[4]) in levels

    def test_invalid_bin_width_rejected(self, result, tmp_path):
        with pytest.raises(ConfigurationError):
            write_trace_csv(result, tmp_path / "x.csv", bin_width_s=0.0)


class TestEventsCsv:
    def test_events_sorted_and_typed(self, result, tmp_path):
        path = write_events_csv(result, tmp_path / "events.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))[1:]
        times = [float(r[0]) for r in rows]
        kinds = {r[1] for r in rows}
        assert times == sorted(times)
        assert kinds <= {"touch", "content_change", "frame_update",
                         "meaningful_frame"}
        assert "frame_update" in kinds
        assert "content_change" in kinds


class TestReplication:
    @pytest.fixture(scope="class")
    def comparison(self):
        return replicate_comparison("Jelly Splash",
                                    seeds=(1, 2, 3),
                                    duration_s=15.0)

    def test_one_measurement_per_seed(self, comparison):
        assert len(comparison.saved_mw) == 3
        assert len(comparison.quality) == 3

    def test_stats(self, comparison):
        stats = comparison.saved_stats
        assert stats.n == 3
        assert stats.mean > 0

    def test_confidence_interval_brackets_mean(self, comparison):
        low, high = comparison.saving_confidence_interval()
        assert low <= comparison.saved_stats.mean <= high

    def test_game_saving_is_significant(self, comparison):
        # The free-running game's saving dwarfs seed noise.
        assert comparison.saving_is_significant()

    def test_ci_deterministic(self, comparison):
        assert comparison.saving_confidence_interval() == \
            comparison.saving_confidence_interval()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate_comparison("Facebook", seeds=())
        comp = ReplicatedComparison(
            app="x", governor="g", seeds=(1,), saved_mw=(10.0,),
            quality=(1.0,))
        with pytest.raises(ConfigurationError):
            comp.saving_confidence_interval(confidence=1.5)
