"""Tests for the binary frame-trace subsystem (``repro.traces``).

Covers the codec (property-based round trips, corrupt-file
rejection), the recorder/replay pipeline (the byte-identical
record -> replay guarantee, serial and pooled), the ``trace:<path>``
app scheme, and the committed golden fixture.
"""

import dataclasses
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.export import json_sanitize, session_summary_dict
from repro.errors import ConfigurationError, TraceError
from repro.pipeline.spec import SessionSpec, spec_roundtrip
from repro.sim.batch import _summarize, run_batch
from repro.sim.session import SessionConfig, run_session
from repro.traces import (
    FrameRecord,
    FrameTrace,
    TraceBuilder,
    load_trace,
    record_session,
    register_trace,
    replay_config,
    rle_decode,
    rle_encode,
    save_trace,
    synthetic_trace,
)
from repro.traces.format import encode_frame_delta

DATA_DIR = pathlib.Path(__file__).parent / "data"


# --------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------

byte_arrays = st.one_of(
    # Arbitrary bytes (worst case for RLE).
    st.binary(min_size=0, max_size=512).map(
        lambda b: np.frombuffer(b, dtype=np.uint8)),
    # Runny data (the case RLE exists for), incl. runs > 65535.
    st.lists(st.tuples(st.integers(0, 255), st.integers(1, 70_000)),
             min_size=0, max_size=4).map(
        lambda runs: np.concatenate(
            [np.full(n, v, dtype=np.uint8) for v, n in runs]
            or [np.zeros(0, dtype=np.uint8)])),
)

geometries = st.tuples(st.integers(min_value=1, max_value=24),
                       st.integers(min_value=1, max_value=24))


@st.composite
def frame_sequences(draw):
    """(width, height, [frames]) with redundant and noisy frames."""
    width, height = draw(geometries)
    count = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    frames = []
    previous = None
    for _ in range(count):
        kind = draw(st.sampled_from(["noise", "repeat", "patch"]))
        if kind == "repeat" and previous is not None:
            frame = previous.copy()
        elif kind == "patch" and previous is not None:
            frame = previous.copy()
            y = int(rng.integers(0, height))
            x = int(rng.integers(0, width))
            frame[y, x] = rng.integers(0, 256, 3, dtype=np.uint8)
        else:
            frame = rng.integers(0, 256, (height, width, 3),
                                 dtype=np.uint8)
        frames.append(frame)
        previous = frame
    return width, height, frames


# --------------------------------------------------------------------
# RLE codec
# --------------------------------------------------------------------

class TestRLE:
    @given(data=byte_arrays)
    @settings(deadline=None, max_examples=200)
    def test_round_trip(self, data):
        payload = rle_encode(data)
        assert len(payload) % 3 == 0
        decoded = rle_decode(payload, data.size)
        assert np.array_equal(decoded, data)

    def test_empty(self):
        assert rle_encode(np.zeros(0, dtype=np.uint8)) == b""
        assert rle_decode(b"", 0).size == 0

    def test_long_run_splits(self):
        data = np.full(200_000, 7, dtype=np.uint8)
        payload = rle_encode(data)
        assert np.array_equal(rle_decode(payload, data.size), data)

    def test_rejects_bad_payloads(self):
        with pytest.raises(TraceError):
            rle_decode(b"\x01\x02", 1)  # not a multiple of 3
        with pytest.raises(TraceError):
            rle_decode(b"\x01\x00\x07", 2)  # total mismatch


# --------------------------------------------------------------------
# Frame deltas
# --------------------------------------------------------------------

class TestFrameDelta:
    @given(seq=frame_sequences())
    @settings(deadline=None, max_examples=100)
    def test_apply_reconstructs_every_frame(self, seq):
        width, height, frames = seq
        canvas = np.zeros((height, width, 3), dtype=np.uint8)
        previous = canvas.copy()
        for index, frame in enumerate(frames):
            record = encode_frame_delta(float(index + 1), previous,
                                        frame)
            record.apply(canvas)
            assert np.array_equal(canvas, frame)
            previous = frame

    def test_redundant_frame_is_empty(self):
        frame = np.full((4, 4, 3), 9, dtype=np.uint8)
        record = encode_frame_delta(1.0, frame, frame.copy())
        assert record.empty
        assert record.payload == b""

    def test_raw_fallback_on_noise(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        b = rng.integers(0, 256, (16, 16, 3), dtype=np.uint8)
        record = encode_frame_delta(1.0, a, b)
        canvas = a.copy()
        record.apply(canvas)
        assert np.array_equal(canvas, b)


# --------------------------------------------------------------------
# File format round trip + rejection
# --------------------------------------------------------------------

class TestFileFormat:
    @given(seq=frame_sequences())
    @settings(deadline=None, max_examples=60)
    def test_save_load_round_trip(self, seq, tmp_path_factory):
        width, height, frames = seq
        builder = TraceBuilder(width, height)
        for index, frame in enumerate(frames):
            builder.add_frame(float(index + 1), frame)
        duration = float(len(frames) + 1)
        aux = {"content_changes": np.arange(len(frames),
                                            dtype=np.float64)}
        trace = builder.build(duration, aux=aux,
                              meta={"origin": "test"})
        path = tmp_path_factory.mktemp("trace") / "t.rptrace"
        save_trace(trace, path)
        loaded = load_trace(path)

        assert (loaded.width, loaded.height) == (width, height)
        assert loaded.duration_s == duration
        assert loaded.meta == {"origin": "test"}
        assert np.array_equal(loaded.aux["content_changes"],
                              aux["content_changes"])
        decoded = [frame.copy() for _, frame in loaded.frames()]
        assert len(decoded) == len(frames)
        for got, expected in zip(decoded, frames):
            assert np.array_equal(got, expected)

    def test_empty_trace_round_trips(self, tmp_path):
        trace = TraceBuilder(8, 8).build(1.0)
        path = tmp_path / "empty.rptrace"
        trace.save(path)
        loaded = FrameTrace.load(path)
        assert loaded.frame_count == 0
        assert loaded.compression_ratio == 0.0

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rptrace"
        trace = synthetic_trace("idle", duration_s=2.0)
        save_trace(trace, path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTATRCE"
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="magic"):
            load_trace(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.rptrace"
        save_trace(synthetic_trace("idle", duration_s=2.0), path)
        data = bytearray(path.read_bytes())
        data[8] = 99  # version word (little-endian u16 at offset 8)
        path.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="version"):
            load_trace(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "whole.rptrace"
        save_trace(synthetic_trace("idle", duration_s=3.0), path)
        data = path.read_bytes()
        cut = tmp_path / "cut.rptrace"
        # Every prefix must fail cleanly, never crash or mis-decode.
        for fraction in (0.01, 0.3, 0.6, 0.95):
            cut.write_bytes(data[:int(len(data) * fraction)])
            with pytest.raises(TraceError):
                load_trace(cut)

    def test_trailing_garbage_rejected(self, tmp_path):
        path = tmp_path / "extra.rptrace"
        save_trace(synthetic_trace("idle", duration_s=2.0), path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_missing_file_is_trace_error(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.rptrace")


# --------------------------------------------------------------------
# Synthetic traces
# --------------------------------------------------------------------

class TestSynthetic:
    def test_idle_trace_compresses_hard(self):
        trace = synthetic_trace("idle", duration_s=10.0)
        # The acceptance bar: a mostly-static UI stream encodes to
        # <= 25% of raw frame bytes.
        assert trace.compression_ratio <= 0.25

    def test_deterministic_in_seed(self):
        a = synthetic_trace("scroll", duration_s=2.0, seed=3)
        b = synthetic_trace("scroll", duration_s=2.0, seed=3)
        for (ta, fa), (tb, fb) in zip(a.frames(), b.frames()):
            assert ta == tb
            assert np.array_equal(fa, fb)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError):
            synthetic_trace("fire", duration_s=1.0)

    @pytest.mark.parametrize("kind", ["video", "scroll", "idle"])
    def test_all_kinds_replayable(self, kind, tmp_path):
        path = tmp_path / f"{kind}.rptrace"
        save_trace(synthetic_trace(kind, duration_s=3.0), path)
        result = run_session(replay_config(path))
        assert result.duration_s == 3.0


# --------------------------------------------------------------------
# Record -> replay: the headline guarantee
# --------------------------------------------------------------------

SESSION = SessionConfig(app="Facebook", governor="section+boost",
                        duration_s=8.0, seed=3)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded session, saved to disk, shared by the module."""
    result, trace = record_session(SESSION)
    path = tmp_path_factory.mktemp("rec") / "session.rptrace"
    save_trace(trace, path)
    return result, trace, path


class TestRecordReplay:
    def test_recording_does_not_perturb_the_session(self, recorded):
        result, _, _ = recorded
        plain = run_session(SESSION)
        assert (json.dumps(session_summary_dict(plain), sort_keys=True)
                == json.dumps(session_summary_dict(result),
                              sort_keys=True))

    def test_replay_summary_byte_identical(self, recorded):
        result, _, path = recorded
        replayed = run_session(replay_config(path))
        assert (json.dumps(session_summary_dict(result),
                           sort_keys=True)
                == json.dumps(session_summary_dict(replayed),
                              sort_keys=True))

    def test_replay_pooled_matches_serial(self, recorded):
        _, _, path = recorded
        config = replay_config(path)
        serial = _summarize(run_session(config))
        scheme = dataclasses.replace(config, app=f"trace:{path}")
        entries = run_batch([config, scheme], workers=2)
        expected = json.dumps(serial, sort_keys=True)
        for entry in entries:
            assert json.dumps(entry, sort_keys=True) == expected

    def test_replay_under_other_governors(self, recorded):
        _, _, path = recorded
        for governor in ("fixed", "section", "oracle"):
            result = run_session(replay_config(path,
                                               governor=governor))
            assert result.duration_s == SESSION.duration_s

    def test_replay_rejects_app_override(self, recorded):
        _, _, path = recorded
        with pytest.raises(TraceError):
            replay_config(path, app="Facebook")

    def test_geometry_mismatch_rejected(self, recorded):
        _, _, path = recorded
        config = dataclasses.replace(replay_config(path),
                                     resolution_divisor=4)
        with pytest.raises(ConfigurationError,
                           match="resolution_divisor"):
            run_session(config)

    def test_trace_frames_match_live_framebuffer(self, recorded):
        _, trace, _ = recorded
        # Re-run and tap the framebuffer: recorded pixels must equal
        # the live pixels at each composition instant.
        from repro.traces.recorder import record_session as rec
        _, again = rec(SESSION)
        assert again.frame_count == trace.frame_count
        for (ta, fa), (tb, fb) in zip(trace.frames(), again.frames()):
            assert ta == tb
            assert np.array_equal(fa, fb)


# --------------------------------------------------------------------
# Registry + spec integration
# --------------------------------------------------------------------

class TestPipelineIntegration:
    def test_trace_scheme_spec_roundtrip(self, recorded):
        _, _, path = recorded
        config = dataclasses.replace(replay_config(path),
                                     app=f"trace:{path}")
        assert spec_roundtrip(config) == config
        doc = SessionSpec.from_config(config).to_json_dict()
        assert SessionSpec.from_json_dict(doc).to_config() == config

    def test_register_trace_runs_as_named_app(self, recorded):
        _, _, path = recorded
        register_trace("recorded-facebook", path, replace=True)
        base = replay_config(path)
        named = dataclasses.replace(base, app="recorded-facebook")
        a = session_summary_dict(run_session(base))
        b = session_summary_dict(run_session(named))
        # Same trace, same governor: same numbers (names differ).
        for key in ("mean_power_mw", "mean_refresh_hz",
                    "content_rate_fps"):
            assert a[key] == b[key]


# --------------------------------------------------------------------
# Golden fixture (also replayed in CI against the committed summary)
# --------------------------------------------------------------------

class TestGoldenFixture:
    def test_golden_replay_matches_committed_summary(self):
        golden = DATA_DIR / "golden.rptrace"
        expected = json.loads(
            (DATA_DIR / "golden_summary.json").read_text())
        result = run_session(replay_config(golden))
        summary = json_sanitize(session_summary_dict(result))
        assert summary == expected
