"""Tests for parameter-grid sweeps (`repro.analysis.sweep`)."""

import copy
import json

import pytest

from repro.analysis.sweep import (
    METRIC_FIELDS,
    SWEEP_SCHEMA,
    _format_stat,
    compare_sweep,
    expand_grid,
    format_regressions,
    format_sweep,
    parse_grid,
    run_sweep,
    t_critical_95,
)
from repro.cache import ResultCache
from repro.errors import ConfigurationError
from repro.pipeline.spec import SessionSpec

BASE = SessionSpec(app="Facebook", duration_s=2.0)
GRID = {"governor": ["fixed", "section+boost"]}


@pytest.fixture(scope="module")
def document():
    return run_sweep(BASE, GRID, seeds=[0, 1], workers=1)


class TestParseGrid:
    def test_values_coerce_to_field_types(self):
        assert parse_grid("governor=fixed,section") == \
            ("governor", ["fixed", "section"])
        assert parse_grid("duration_s=2,3.5") == \
            ("duration_s", [2.0, 3.5])
        assert parse_grid("table_bias=-1,0,1") == \
            ("table_bias", [-1, 0, 1])
        assert parse_grid("track_oled=true,false") == \
            ("track_oled", [True, False])

    def test_duplicates_dedupe_in_order(self):
        assert parse_grid("governor=a,b,a") == ("governor", ["a", "b"])

    def test_malformed_axes_rejected(self):
        for bad in ("governor", "=x", "governor=",
                    "no_such_field=1", "duration_s=abc",
                    "meter=1", "seed=1,2"):
            with pytest.raises(ConfigurationError):
                parse_grid(bad)


class TestExpandGrid:
    def test_cartesian_product_sorted_axes(self):
        cells = expand_grid({"b": [1, 2], "a": ["x", "y"]})
        assert cells == [{"a": "x", "b": 1}, {"a": "x", "b": 2},
                         {"a": "y", "b": 1}, {"a": "y", "b": 2}]

    def test_empty_grid_is_one_base_cell(self):
        assert expand_grid({}) == [{}]


class TestRunSweep:
    def test_document_shape(self, document):
        assert document["schema"] == SWEEP_SCHEMA
        assert document["seeds"] == [0, 1]
        assert len(document["cells"]) == 4
        assert len(document["aggregates"]) == 2
        for cell in document["cells"]:
            assert cell["spec_digest"].startswith("sha256:")
            assert set(cell["metrics"]) == set(METRIC_FIELDS)
        for aggregate in document["aggregates"]:
            stats = aggregate["metrics"]["mean_power_mw"]
            assert stats["n"] == 2
            assert stats["mean"] > 0
            # n=2 -> df=1 -> the Student-t critical value, not z=1.96.
            assert stats["ci95"] == pytest.approx(
                12.706 * stats["std"] / (2 ** 0.5))

    def test_single_seed_has_null_ci(self):
        # One seed carries no dispersion information: std/ci95 must be
        # null, never 0.0 (which would render as perfect certainty).
        document = run_sweep(BASE, {}, seeds=[1], workers=1)
        stats = document["aggregates"][0]["metrics"]["mean_power_mw"]
        assert stats == {"mean": stats["mean"], "std": None,
                         "ci95": None, "n": 1}

    def test_t_critical_values(self):
        from repro.errors import ConfigurationError
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(4) == pytest.approx(2.776)
        assert t_critical_95(30) == pytest.approx(2.042)
        # Between table rows df rounds down (conservative widening).
        assert t_critical_95(35) == pytest.approx(2.042)
        assert t_critical_95(1000) == pytest.approx(1.980)
        with pytest.raises(ConfigurationError):
            t_critical_95(0)

    def test_zero_width_interval_still_annotated(self):
        # All seeds agreeing exactly is a legitimate CI of width zero;
        # the falsy-float guard used to drop the annotation silently.
        text = _format_stat({"mean": 5.0, "std": 0.0, "ci95": 0.0,
                             "n": 3})
        assert text == "5.0 ±0.0"
        assert _format_stat({"mean": 5.0, "std": None, "ci95": None,
                             "n": 1}) == "5.0"

    def test_worker_count_never_changes_the_document(self, document):
        pooled = run_sweep(BASE, GRID, seeds=[0, 1], workers=2)
        assert json.dumps(pooled, sort_keys=True) == \
            json.dumps(document, sort_keys=True)

    def test_warm_sweep_is_byte_identical(self, document, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(BASE, GRID, seeds=[0, 1], workers=1,
                         cache=cache)
        warm = run_sweep(BASE, GRID, seeds=[0, 1], workers=1,
                         cache=cache)
        text = json.dumps(document, sort_keys=True)
        assert json.dumps(cold, sort_keys=True) == text
        assert json.dumps(warm, sort_keys=True) == text
        stats = cache.stats_dict()
        assert stats["hits"] == len(document["cells"])
        assert stats["misses"] == len(document["cells"])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sweep(BASE, GRID, seeds=[])

    def test_document_is_strict_json(self, document):
        json.dumps(document, allow_nan=False)


class TestCompareSweep:
    def test_self_comparison_is_clean(self, document):
        assert compare_sweep(document, document) == []

    def test_worsened_metric_flags_direction_aware(self, document):
        reference = copy.deepcopy(document)
        target = reference["aggregates"][0]["metrics"]
        target["mean_power_mw"]["mean"] *= 0.5  # current looks +100%
        target["display_quality"]["mean"] *= 2.0  # current looks -50%
        regressions = compare_sweep(document, reference,
                                    threshold=0.05)
        flagged = {r["metric"] for r in regressions}
        assert flagged == {"mean_power_mw", "display_quality"}

    def test_improvement_never_flags(self, document):
        reference = copy.deepcopy(document)
        target = reference["aggregates"][0]["metrics"]
        target["mean_power_mw"]["mean"] *= 2.0  # current is better
        target["display_quality"]["mean"] *= 0.5  # current is better
        assert compare_sweep(document, reference) == []

    def test_missing_cell_is_a_regression(self, document):
        current = copy.deepcopy(document)
        del current["aggregates"][1]
        regressions = compare_sweep(current, document)
        assert len(regressions) == 1
        assert "missing" in regressions[0]["reason"]

    def test_per_metric_threshold_overrides(self, document):
        reference = copy.deepcopy(document)
        target = reference["aggregates"][0]["metrics"]
        target["mean_power_mw"]["mean"] /= 1.2  # current looks +20%
        assert compare_sweep(document, reference,
                             threshold=0.05) != []
        assert compare_sweep(
            document, reference, threshold=0.05,
            metric_thresholds={"mean_power_mw": 0.5}) == []

    def test_bad_thresholds_rejected(self, document):
        with pytest.raises(ConfigurationError):
            compare_sweep(document, document, threshold=-1.0)
        with pytest.raises(ConfigurationError):
            compare_sweep(document, document,
                          metric_thresholds={"mean_power_mw": -0.1})

    def test_format_regressions(self, document):
        assert "OK" in format_regressions([])
        reference = copy.deepcopy(document)
        reference["aggregates"][0]["metrics"]["mean_power_mw"][
            "mean"] *= 0.5
        text = format_regressions(compare_sweep(document, reference))
        assert "1 regression(s)" in text
        assert "mean_power_mw" in text


class TestFormatSweep:
    def test_table_lists_every_cell(self, document):
        text = format_sweep(document)
        assert "2 cells x 2 seeds" in text
        assert "governor=fixed" in text
        assert "governor=section+boost" in text


class TestCli:
    def _run(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_sweep_cold_warm_check_cycle(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_cold = str(tmp_path / "cold.json")
        out_warm = str(tmp_path / "warm.json")
        stats_out = str(tmp_path / "stats.json")
        argv = ["sweep", "--app", "Facebook", "--duration", "2",
                "--grid", "governor=fixed,section+boost",
                "--seeds", "0,1", "--cache", cache]
        code, out, _ = self._run(capsys, *argv, "--out", out_cold)
        assert code == 0
        assert "2 cells x 2 seeds" in out
        code, _, err = self._run(capsys, *argv, "--out", out_warm,
                                 "--stats-out", stats_out)
        assert code == 0
        assert "4/4 hits (100%)" in err
        with open(out_cold, "rb") as cold_handle, \
                open(out_warm, "rb") as warm_handle:
            assert cold_handle.read() == warm_handle.read()
        stats = json.loads(open(stats_out).read())
        assert stats["cache"]["hits"] == stats["cells"] == 4
        # Self-check against the cold document passes...
        code, out, _ = self._run(capsys, *argv, "--check", out_cold)
        assert code == 0
        assert "sweep check: OK" in out
        # ... and a doctored reference fails with exit 1.
        reference = json.loads(open(out_cold).read())
        reference["aggregates"][0]["metrics"]["mean_power_mw"][
            "mean"] *= 0.5
        doctored = tmp_path / "reference.json"
        doctored.write_text(json.dumps(reference))
        code, out, _ = self._run(capsys, *argv,
                                 "--check", str(doctored))
        assert code == 1
        assert "regression(s)" in out

    def test_sweep_json_output(self, tmp_path, capsys):
        code, out, _ = self._run(
            capsys, "sweep", "--app", "Facebook", "--duration", "2",
            "--seeds", "1")
        assert code == 0
        code, out, _ = self._run(
            capsys, "sweep", "--app", "Facebook", "--duration", "2",
            "--seeds", "1", "--json")
        assert json.loads(out)["schema"] == SWEEP_SCHEMA

    def test_sweep_cache_max_entries_prunes(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code, _, _ = self._run(
            capsys, "sweep", "--app", "Facebook", "--duration", "2",
            "--grid", "governor=fixed,section", "--seeds", "0,1",
            "--cache", str(cache_dir), "--cache-max-entries", "1")
        assert code == 0
        assert ResultCache(cache_dir).entry_count() == 1

    def test_sweep_rejects_bad_arguments(self, capsys):
        from repro.cli import main
        base = ["sweep", "--app", "Facebook", "--duration", "2"]
        for extra in (["--grid", "bogus"],
                      ["--grid", "governor=a", "--grid",
                       "governor=b"],
                      ["--seeds", "x"],
                      ["--check", "/nonexistent.json"]):
            with pytest.raises(SystemExit) as excinfo:
                main(base + extra)
            assert excinfo.value.code == 2
            capsys.readouterr()
