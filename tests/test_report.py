"""Tests for the one-command reproduction report."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.report import generate_report
from repro.experiments.survey import SurveyConfig


@pytest.fixture(scope="module")
def report_text():
    return generate_report(
        survey_config=SurveyConfig(
            apps=("Facebook", "Jelly Splash"), duration_s=8.0, seed=4),
        trace_duration_s=12.0, fig6_duration_s=4.0, seed=4)


class TestGenerateReport:
    def test_every_artifact_present(self, report_text):
        for marker in ("Figure 2", "Figure 3", "Figure 5", "Figure 6",
                       "Figure 7", "Figure 8", "Figure 9", "Figure 10",
                       "Figure 11", "Table 1"):
            assert marker in report_text, marker

    def test_header_and_version(self, report_text):
        import repro
        assert report_text.startswith("# Reproduction report")
        assert repro.__version__ in report_text

    def test_fig5_exactness_stated(self, report_text):
        assert "table matches the paper exactly" in report_text

    def test_invalid_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_report(trace_duration_s=0.0)
