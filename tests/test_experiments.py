"""Tests for the experiment drivers (short configurations)."""

import numpy as np
import pytest

from repro.apps.profile import AppCategory
from repro.experiments import (
    fig2,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    run_survey,
    table1,
)
from repro.experiments.registry import EXPERIMENTS, experiment
from repro.experiments.survey import SurveyConfig

# One small shared survey for all survey-based experiment tests: four
# apps (two per category), short sessions.
SMALL = SurveyConfig(
    apps=("Facebook", "MX Player", "Jelly Splash", "TempleRun"),
    duration_s=12.0,
    seed=2,
)


@pytest.fixture(scope="module")
def survey():
    return run_survey(SMALL)


class TestSurvey:
    def test_sessions_indexed_by_app_and_governor(self, survey):
        assert set(survey.sessions) == set(SMALL.apps)
        for app in SMALL.apps:
            assert set(survey.sessions[app]) == set(SMALL.governors)

    def test_cache_returns_same_object(self, survey):
        assert run_survey(SMALL) is survey

    def test_measurements_cover_all_apps(self, survey):
        rows = survey.measurements("section")
        assert {r.app_name for r in rows} == set(SMALL.apps)
        for r in rows:
            assert r.baseline_power_mw > 0
            assert 0.0 <= r.display_quality <= 1.0

    def test_missing_baseline_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            SurveyConfig(governors=("section",))


class TestFig2:
    def test_traces_and_shape_claims(self):
        result = fig2.run(duration_s=20.0, seed=2)
        fb = result.traces["Facebook"]
        jelly = result.traces["Jelly Splash"]
        # Facebook idles near zero; Jelly Splash holds ~60 fps.
        assert fb.median_frame_rate < 20.0
        assert jelly.median_frame_rate > 55.0
        assert jelly.mean_redundant_rate > 30.0
        assert "Figure 2" in result.format()


class TestFig3:
    def test_rows_and_categories(self, survey):
        result = fig3.run(survey)
        assert len(result.rows) == 4
        games = result.category_rows(AppCategory.GAME)
        assert all(r.frame_rate_fps > 30.0 for r in games)
        for r in result.rows:
            assert r.redundant_fps >= 0.0
            assert r.meaningful_fps <= r.frame_rate_fps + 0.5
        assert "Figure 3" in result.format()

    def test_redundancy_fraction_helper(self, survey):
        result = fig3.run(survey)
        frac = result.fraction_with_redundancy_above(AppCategory.GAME,
                                                     20.0)
        assert 0.0 <= frac <= 1.0


class TestFig6:
    def test_accuracy_decreases_with_budget(self):
        acc = fig6.run_accuracy(duration_s=5.0, seed=3)
        by_label = {a.label: a for a in acc}
        # 9K and up: exact; 2K: visibly wrong (the paper's shape).
        assert by_label["9K"].error_rate == 0.0
        assert by_label["36K"].error_rate == 0.0
        assert by_label["921K"].error_rate == 0.0
        assert by_label["2K"].error_rate > 0.02
        assert by_label["2K"].error_rate >= by_label["4K"].error_rate

    def test_cost_monotone_and_921k_blows_budget(self):
        cost = fig6.run_cost(repeats=10)
        by_label = {c.label: c for c in cost}
        assert by_label["921K"].median_compare_s > \
            by_label["36K"].median_compare_s > \
            by_label["9K"].median_compare_s
        assert not by_label["921K"].within_vsync_budget
        assert by_label["9K"].within_vsync_budget

    def test_format(self):
        result = fig6.run(duration_s=3.0, repeats=5)
        assert "Figure 6" in result.format()


class TestFig7:
    def test_traces_present_and_boost_helps(self):
        result = fig7.run(duration_s=20.0, seed=2)
        assert set(result.traces) == {
            (app, method)
            for app in ("Facebook", "Jelly Splash")
            for method in ("section", "section+boost")
        }
        for app in ("Facebook", "Jelly Splash"):
            section = result.traces[(app, "section")]
            boosted = result.traces[(app, "section+boost")]
            assert boosted.quality >= section.quality - 0.05
            assert boosted.boosts >= 0
        assert "Figure 7" in result.format()


class TestFig8:
    def test_savings_positive_and_jelly_dominates(self):
        result = fig8.run(duration_s=20.0, seed=2)
        fb = result.traces[("Facebook", "section")]
        jelly = result.traces[("Jelly Splash", "section")]
        assert fb.mean_saved_mw > 0
        assert jelly.mean_saved_mw > fb.mean_saved_mw
        assert len(fb.saved_power_mw) == 20
        assert "Figure 8" in result.format()


class TestFig9:
    def test_rows_and_category_stats(self, survey):
        result = fig9.run(survey)
        assert len(result.rows) == 4
        mean = result.category_mean(AppCategory.GAME, "section")
        assert mean.mean > 0
        assert result.category_max(AppCategory.GAME, "section") >= \
            mean.mean
        assert "Figure 9" in result.format()


class TestFig10:
    def test_estimates_bounded_by_actual(self, survey):
        result = fig10.run(survey)
        for row in result.rows:
            for method in ("section", "section+boost"):
                assert row.dropped_fps(method) >= 0.0
        assert "Figure 10" in result.format()

    def test_percentile_helper(self, survey):
        result = fig10.run(survey)
        d = result.dropped_fps_80th(AppCategory.GENERAL, "section")
        assert d >= 0.0


class TestFig11:
    def test_quality_fractions(self, survey):
        result = fig11.run(survey)
        for row in result.rows:
            for method in ("section", "section+boost"):
                assert 0.0 <= row.quality[method] <= 1.0
        assert 0.0 <= result.worst_quality("section+boost") <= 1.0
        assert "Figure 11" in result.format()


class TestTable1:
    def test_structure_and_cells(self, survey):
        result = table1.run(survey)
        for category in (AppCategory.GENERAL, AppCategory.GAME):
            for method in ("section", "section+boost"):
                cell = result.cell(category, method)
                assert cell.n_apps == 2
                assert cell.saved_power_percent.mean > 0
        assert "Table 1" in result.format()

    def test_unknown_category_rejected(self, survey):
        result = table1.run(survey)
        with pytest.raises(KeyError):
            result.cell("not-a-category", "section")


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = {e.experiment_id for e in EXPERIMENTS}
        assert ids == {"fig2", "fig3", "fig5", "fig6", "fig7", "fig8",
                       "fig9", "fig10", "fig11", "table1",
                       "tournament", "resilience"}

    def test_lookup(self):
        info = experiment("fig9")
        assert "power" in info.paper_content.lower()
        assert info.benchmark.startswith("benchmarks/")

    def test_unknown_experiment_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            experiment("fig99")

    def test_runners_are_callable(self):
        for info in EXPERIMENTS:
            assert callable(info.runner)
