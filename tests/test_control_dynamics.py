"""Precise control-loop dynamics: ladder climbs, decay, boost hand-off.

These tests pin the *timing* of the governor's behaviour, not just its
endpoints — the mechanism behind Figure 7's traces.
"""

import pytest

from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.inputs.monkey import MonkeyConfig
from repro.sim.session import SessionConfig, run_session


def burst_profile(idle=0.5, active=40.0, burst_s=20.0):
    """Idle app that bursts hard on touch (and stays bursting)."""
    return AppProfile(
        name="dynamics-app", category=AppCategory.GENERAL,
        idle_content_fps=idle, active_content_fps=active,
        burst_duration_s=burst_s,
        content_process=ContentProcess.ANIMATION,
        idle_submit_fps=0.0, render_style=RenderStyle.SCENE,
        touch_events_per_s=0.0, scroll_fraction=0.0)


def one_touch_monkey(touch_time, duration):
    """A Monkey config replaced by an explicit single-touch script."""
    # events_per_s=0 yields an empty script; we inject the touch by
    # choosing warmup such that exactly one event fires is fiddly, so
    # instead use a high-rate, tight window.
    del touch_time
    return MonkeyConfig(duration_s=duration, events_per_s=0.0)


class TestLadderClimb:
    def _session(self, governor):
        # One touch at t=10 (monkey: a single-event window).
        monkey = MonkeyConfig(duration_s=30.0, events_per_s=0.0)
        result = run_session(SessionConfig(
            app=burst_profile(), governor=governor, duration_s=30.0,
            seed=3, monkey=monkey))
        return result

    def test_idle_app_settles_at_floor_quickly(self):
        result = self._session("section")
        # With ~0.5 fps content the first decision (200 ms) already
        # selects 20 Hz.
        assert result.panel.rate_history.value_at(1.0) == 20.0

    def test_climb_reaches_maximum_within_seconds(self):
        # Touch injected via the app's own burst: drive with a script
        # that really contains one touch.
        from repro.inputs.touch import TouchEvent, TouchScript
        from repro.sim.session import run_session as _run
        # Simpler: use a profile whose *idle* content is the burst —
        # i.e. content jumps at t=0 and the ladder climbs from the
        # initial 60 Hz downwards... instead test the upward ladder by
        # starting at the floor: idle first 10 s, then rate rises via
        # a periodic 40 fps process that only starts mattering once
        # running.  The cleanest upward test: app with constant 40 fps
        # ANIMATION content and governor starting from a panel already
        # settled at 20 Hz is covered by the naive-deadlock tests; here
        # assert the section governor, starting fresh (60 Hz), never
        # needs to climb for constant-high content: it stays at 60.
        profile = burst_profile(idle=40.0, active=40.0)
        result = _run(SessionConfig(
            app=profile, governor="section", duration_s=20.0, seed=3,
            monkey=MonkeyConfig(duration_s=20.0, events_per_s=0.0)))
        # Constant 40 fps content -> 60 Hz section, held throughout
        # (after the first window fills).
        assert result.panel.rate_history.mean(5.0, 20.0) > 55.0
        del TouchEvent, TouchScript

    def test_decay_to_floor_after_content_stops(self):
        # Content at 40 fps for the first segment only (burst ends).
        profile = AppProfile(
            name="decay-app", category=AppCategory.GENERAL,
            idle_content_fps=0.0, active_content_fps=40.0,
            burst_duration_s=5.0,
            content_process=ContentProcess.ANIMATION,
            idle_submit_fps=0.0, render_style=RenderStyle.SCENE,
            touch_events_per_s=0.3, scroll_fraction=0.0)
        result = run_session(SessionConfig(
            app=profile, governor="section", duration_s=40.0, seed=6))
        # Find a burst end: last touch + burst duration; within
        # window + a couple of decision periods the rate is back at
        # the floor.
        touches = result.touch_script.times
        assert touches, "seed produced no touches; pick another seed"
        quiet_start = max(touches) + 5.0
        if quiet_start + 3.0 < 40.0:
            assert result.panel.rate_history.value_at(
                quiet_start + 2.0) == 20.0


class TestBoostHandOff:
    def test_boost_expires_to_section_choice(self):
        # After the boost hold, the section governor should keep a
        # rate covering the (still-bursting) content, not fall to the
        # floor.
        profile = burst_profile(idle=0.5, active=30.0, burst_s=10.0)
        result = run_session(SessionConfig(
            app=profile, governor="section+boost", duration_s=30.0,
            seed=8,
            monkey=MonkeyConfig(duration_s=30.0, events_per_s=0.12,
                                scroll_fraction=0.0, warmup_s=5.0)))
        touches = result.touch_script.times
        if not touches:
            pytest.skip("seed produced no touches")
        touch = touches[0]
        # During the hold: maximum rate.
        assert result.panel.rate_history.value_at(touch + 0.5) == 60.0
        # Well after the hold but mid-burst (content 30 fps): the
        # section table selects 40 Hz (30 in [27, 35)).
        probe = touch + 3.0
        if all(abs(probe - t) > 2.0 for t in touches[1:]):
            assert result.panel.rate_history.value_at(probe) >= 40.0

    def test_boost_rate_switch_count_scales_with_touches(self):
        profile = burst_profile(idle=0.5, active=30.0, burst_s=2.0)
        few = run_session(SessionConfig(
            app=profile, governor="section+boost", duration_s=30.0,
            seed=8,
            monkey=MonkeyConfig(duration_s=30.0, events_per_s=0.1,
                                scroll_fraction=0.0)))
        many = run_session(SessionConfig(
            app=profile, governor="section+boost", duration_s=30.0,
            seed=8,
            monkey=MonkeyConfig(duration_s=30.0, events_per_s=0.6,
                                scroll_fraction=0.0)))
        assert len(many.touch_script) > len(few.touch_script)
        assert many.panel.rate_switches >= few.panel.rate_switches


class TestWindowDynamics:
    def test_measured_rate_ramps_at_window_speed(self):
        """After a mid-session step in true content, the sliding
        window ramps the measurement linearly over ~window_s — the lag
        that makes the governor climb one section at a time."""
        import numpy as np
        from repro.core.content_rate import ContentRateMeter, MeterConfig
        from repro.graphics.framebuffer import Framebuffer

        fb = Framebuffer(32, 24)
        meter = ContentRateMeter(fb, MeterConfig(window_s=1.0))
        # Quiet until t=5, then meaningful frames at 40 fps.
        value = 1
        for i in range(80):
            t = 5.0 + i / 40.0
            value = (value + 13) % 256
            fb.write(np.full(fb.shape, value, dtype=np.uint8), t)
        # Half a window after the step: roughly half the true rate.
        assert meter.content_rate(5.5) == pytest.approx(20.0, abs=3.0)
        # A full window after: the true rate.
        assert meter.content_rate(6.5) == pytest.approx(40.0, abs=3.0)


class TestVsyncLatchedRateSwitch:
    """The panel's V-Sync cadence around a mid-frame rate switch.

    Audit note: :class:`~repro.display.panel.DisplayPanel` deliberately
    does *not* use :class:`~repro.sim.engine.PeriodicTask` — it owns a
    cancel-free reschedule-at-fire loop where a mid-frame
    ``set_refresh_rate`` only marks a pending rate.  The pending V-Sync
    keeps its scheduled time (the panel cannot abandon a scan-out in
    progress) and the *next* interval runs at the new rate.  This test
    pins those V-Sync-latched semantics; controllers that instead need
    a retimed pending tick use ``PeriodicTask.set_period(retime=True)``.
    """

    def test_pending_vsync_keeps_old_cadence(self):
        from repro.display.panel import DisplayPanel
        from repro.display.presets import panel_preset
        from repro.sim.engine import Simulator

        sim = Simulator()
        panel = DisplayPanel(sim, panel_preset("galaxy-s3"),
                             initial_rate_hz=20.0)
        vsyncs = []
        panel.add_vsync_listener(lambda t: vsyncs.append(t))
        panel.start()
        # Mid-frame request at t=0.06 (between the 0.05 and 0.10
        # V-Syncs of the 20 Hz cadence).
        sim.call_at(0.06, lambda s: panel.set_refresh_rate(60.0))
        sim.run_until(0.06)
        assert panel.refresh_rate_hz == 20.0  # not applied yet
        sim.run_until(0.2)
        # The pending V-Sync fired on the old 20 Hz cadence at 0.10;
        # every interval after runs at 60 Hz.
        assert vsyncs[0] == pytest.approx(0.05)
        assert vsyncs[1] == pytest.approx(0.10)
        assert vsyncs[2] == pytest.approx(0.10 + 1.0 / 60.0)
        assert vsyncs[3] == pytest.approx(0.10 + 2.0 / 60.0)
        assert panel.refresh_rate_hz == 60.0

    def test_rate_history_steps_at_the_boundary(self):
        from repro.display.panel import DisplayPanel
        from repro.display.presets import panel_preset
        from repro.sim.engine import Simulator

        sim = Simulator()
        panel = DisplayPanel(sim, panel_preset("galaxy-s3"),
                             initial_rate_hz=20.0)
        panel.start()
        sim.call_at(0.06, lambda s: panel.set_refresh_rate(60.0))
        sim.run_until(0.2)
        # The recorded switch instant is the frame boundary (0.10),
        # not the request instant (0.06).
        assert panel.rate_history.sample([0.09])[0] == 20.0
        assert panel.rate_history.sample([0.11])[0] == 60.0
