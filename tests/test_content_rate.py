"""Tests for the content-rate meter."""

import numpy as np
import pytest

from repro.core.content_rate import (
    ContentRateMeter,
    MeterConfig,
    measure_accuracy,
)
from repro.errors import ConfigurationError
from repro.graphics.framebuffer import Framebuffer


def make_fb(width=32, height=24):
    return Framebuffer(width, height)


def frame(value, fb):
    return np.full(fb.shape, value, dtype=np.uint8)


class TestMeterConfig:
    def test_defaults_are_the_paper_operating_point(self):
        cfg = MeterConfig()
        assert cfg.sample_count == 9216
        assert cfg.window_s == 1.0
        assert cfg.store_full_frames

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            MeterConfig(sample_count=0)
        with pytest.raises(ConfigurationError):
            MeterConfig(window_s=0.0)


class TestMeaningfulVsRedundant:
    def test_first_frame_compared_against_boot_contents(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        # The framebuffer boots all-black; writing black again is a
        # redundant frame, writing anything else is meaningful.
        fb.write(frame(0, fb), 0.1)
        assert meter.total_meaningful == 0
        fb.write(frame(9, fb), 0.2)
        assert meter.total_meaningful == 1

    def test_identical_frames_are_redundant(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        for i in range(5):
            fb.write(frame(7, fb), 0.1 * (i + 1))
        assert meter.total_frames == 5
        assert meter.total_meaningful == 1
        assert meter.total_redundant == 4

    def test_changing_frames_are_meaningful(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        for i in range(5):
            fb.write(frame(40 + i * 40, fb), 0.1 * (i + 1))
        assert meter.total_meaningful == 5
        assert meter.total_redundant == 0

    def test_alternating_pattern(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        values = [1, 1, 2, 2, 2, 3]
        for i, v in enumerate(values):
            fb.write(frame(v, fb), 0.1 * (i + 1))
        assert meter.total_meaningful == 3  # 1, 2, 3
        assert meter.total_redundant == 3

    def test_identical_frames_after_boot_all_redundant(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        for i in range(4):
            fb.write(frame(0, fb), 0.1 * (i + 1))  # boot colour
        assert meter.total_meaningful == 0


class TestRates:
    def test_content_rate_in_window(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        # 10 meaningful frames between t=1.0 and t=2.0 (values start
        # at 25 so the first differs from the all-black boot frame).
        for i in range(10):
            fb.write(frame(25 + i * 20, fb), 1.0 + 0.1 * (i + 0.5))
        assert meter.content_rate(2.0) == pytest.approx(10.0)

    def test_old_events_leave_the_window(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        fb.write(frame(1, fb), 0.5)
        assert meter.content_rate(1.0) == pytest.approx(1.0)
        assert meter.content_rate(2.5) == 0.0

    def test_frame_and_redundant_rates(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        fb.write(frame(1, fb), 0.2)
        fb.write(frame(1, fb), 0.4)
        fb.write(frame(1, fb), 0.6)
        assert meter.frame_rate(1.0) == pytest.approx(3.0)
        assert meter.content_rate(1.0) == pytest.approx(1.0)
        assert meter.redundant_rate(1.0) == pytest.approx(2.0)

    def test_early_window_clamped_to_session_start(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        fb.write(frame(1, fb), 0.1)
        # At t=0.5 the window is only 0.5 s long.
        assert meter.content_rate(0.5) == pytest.approx(2.0)

    def test_rate_at_time_zero_is_zero(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        assert meter.content_rate(0.0) == 0.0

    def test_custom_window(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        fb.write(frame(1, fb), 0.2)
        fb.write(frame(2, fb), 1.8)
        assert meter.content_rate(2.0, window_s=2.0) == pytest.approx(1.0)
        assert meter.content_rate(2.0, window_s=0.5) == pytest.approx(2.0)


class TestGridLimits:
    def test_small_change_invisible_to_sparse_grid(self):
        fb = make_fb(width=100, height=100)
        meter = ContentRateMeter(fb, MeterConfig(sample_count=100))
        base = frame(40, fb)
        fb.write(base, 0.1)
        # Change a pixel between the 10x10 grid's sample points.
        tweaked = base.copy()
        tweaked[6, 6] = 200
        fb.write(tweaked, 0.2)
        assert meter.total_meaningful == 1  # base seen; tweak missed

    def test_full_budget_sees_everything(self):
        fb = make_fb(width=100, height=100)
        meter = ContentRateMeter(fb, MeterConfig(sample_count=100 * 100))
        base = frame(40, fb)
        fb.write(base, 0.1)
        tweaked = base.copy()
        tweaked[6, 6] = 200
        fb.write(tweaked, 0.2)
        assert meter.total_meaningful == 2


class TestStorageVariants:
    def test_sampled_storage_equivalent_for_metering(self):
        results = []
        for store_full in (True, False):
            fb = make_fb()
            meter = ContentRateMeter(
                fb, MeterConfig(sample_count=64,
                                store_full_frames=store_full))
            rng = np.random.default_rng(5)
            for i in range(20):
                if rng.random() < 0.5:
                    fb.write(frame(int(rng.integers(0, 255)), fb),
                             0.1 * (i + 1))
                else:
                    fb.write(fb.snapshot(), 0.1 * (i + 1))
            results.append(meter.total_meaningful)
        assert results[0] == results[1]

    def test_sampled_storage_copies_fewer_bytes(self):
        fb_a = make_fb()
        full = ContentRateMeter(fb_a, MeterConfig(sample_count=64,
                                                  store_full_frames=True))
        fb_b = make_fb()
        sampled = ContentRateMeter(
            fb_b, MeterConfig(sample_count=64, store_full_frames=False))
        for i in range(3):
            fb_a.write(frame(i, fb_a), 0.1 * (i + 1))
            fb_b.write(frame(i, fb_b), 0.1 * (i + 1))
        assert sampled.bytes_copied < full.bytes_copied


class TestDetach:
    def test_detached_meter_stops_observing(self):
        fb = make_fb()
        meter = ContentRateMeter(fb)
        fb.write(frame(1, fb), 0.1)
        meter.detach()
        fb.write(frame(2, fb), 0.2)
        assert meter.total_frames == 1


class TestMeasureAccuracy:
    def test_exact(self):
        assert measure_accuracy(10, 10) == 0.0

    def test_undercount(self):
        assert measure_accuracy(8, 10) == pytest.approx(0.2)

    def test_zero_truth_zero_measured(self):
        assert measure_accuracy(0, 0) == 0.0

    def test_zero_truth_nonzero_measured(self):
        assert measure_accuracy(3, 0) == float("inf")
