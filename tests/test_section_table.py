"""Tests for the section table (Equation 1)."""

import pytest

from repro.core.section_table import Section, SectionTable
from repro.display.presets import GALAXY_S3_PANEL, LTPO_120_PANEL
from repro.errors import ConfigurationError

GS3_RATES = (20.0, 24.0, 30.0, 40.0, 60.0)


class TestFigure5Reproduction:
    """The table must reproduce Figure 5 exactly."""

    def setup_method(self):
        self.table = SectionTable.from_rates(GS3_RATES)

    @pytest.mark.parametrize("content,expected", [
        (0.0, 20.0), (5.0, 20.0), (9.99, 20.0),
        (10.0, 24.0), (15.0, 24.0), (21.99, 24.0),
        (22.0, 30.0), (25.0, 30.0), (26.99, 30.0),
        (27.0, 40.0), (33.0, 40.0), (34.99, 40.0),
        (35.0, 60.0), (50.0, 60.0), (60.0, 60.0), (240.0, 60.0),
    ])
    def test_lookup_matches_figure5(self, content, expected):
        assert self.table.lookup(content) == expected

    def test_paper_example_8fps(self):
        # "The application initially updates frames at 8 fps ... the
        # refresh rate is set to 20 Hz."
        assert self.table.lookup(8.0) == 20.0

    def test_paper_example_33fps(self):
        # "When the application displays at 33 fps ... adjusted to
        # 40 Hz."
        assert self.table.lookup(33.0) == 40.0

    def test_thresholds_are_medians(self):
        highs = [s.high for s in self.table.sections[:-1]]
        assert highs == [10.0, 22.0, 27.0, 35.0]


class TestEquationOneGeneralisation:
    def test_two_rates(self):
        table = SectionTable.from_rates([30.0, 60.0])
        assert table.lookup(0.0) == 30.0
        assert table.lookup(14.9) == 30.0
        assert table.lookup(15.0) == 60.0

    def test_single_rate_degenerate(self):
        table = SectionTable.from_rates([60.0])
        assert table.lookup(0.0) == 60.0
        assert table.lookup(100.0) == 60.0

    def test_unsorted_input_handled(self):
        a = SectionTable.from_rates([60.0, 20.0, 40.0, 24.0, 30.0])
        b = SectionTable.from_rates(GS3_RATES)
        for c in (0.0, 11.0, 23.0, 29.0, 44.0):
            assert a.lookup(c) == b.lookup(c)

    def test_for_panel(self):
        table = SectionTable.for_panel(GALAXY_S3_PANEL)
        assert table.refresh_rates_hz == GS3_RATES

    def test_ltpo_panel_table(self):
        # "The thresholds should be redefined when the available
        # refresh rates are changed."
        table = SectionTable.for_panel(LTPO_120_PANEL)
        assert table.lookup(0.3) == 1.0
        assert table.lookup(100.0) == 120.0
        assert table.headroom_ok()

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            SectionTable.from_rates([])

    def test_duplicate_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            SectionTable.from_rates([20.0, 20.0, 60.0])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            SectionTable.from_rates([0.0, 60.0])


class TestHeadroomProperty:
    """The anti-deadlock property the paper derives Equation (1) for."""

    @pytest.mark.parametrize("rates", [
        GS3_RATES,
        (30.0, 60.0),
        (15.0, 30.0, 60.0),
        (1.0, 10.0, 24.0, 30.0, 40.0, 60.0, 90.0, 120.0),
    ])
    def test_selected_rate_exceeds_section_top(self, rates):
        table = SectionTable.from_rates(rates)
        assert table.headroom_ok()
        for section in table.sections[:-1]:
            assert section.refresh_rate_hz > section.high

    def test_selected_rate_always_at_least_content(self):
        table = SectionTable.from_rates(GS3_RATES)
        for c10 in range(0, 601):
            c = c10 / 10.0
            selected = table.lookup(c)
            # Above the panel max the rate saturates, which is the best
            # the hardware can do.
            assert selected >= min(c, table.max_rate_hz)


class TestTableStructure:
    def test_sections_contiguous_from_zero(self):
        table = SectionTable.from_rates(GS3_RATES)
        assert table.sections[0].low == 0.0
        for a, b in zip(table.sections, table.sections[1:]):
            assert a.high == b.low
        assert table.sections[-1].high == float("inf")

    def test_invalid_hand_built_tables_rejected(self):
        with pytest.raises(ConfigurationError):
            SectionTable([Section(1.0, 10.0, 20.0)])  # gap below
        with pytest.raises(ConfigurationError):
            SectionTable([Section(0.0, 10.0, 20.0)])  # no top section
        with pytest.raises(ConfigurationError):
            SectionTable([Section(0.0, 10.0, 40.0),
                          Section(10.0, float("inf"), 20.0)])  # not rising

    def test_negative_lookup_rejected(self):
        table = SectionTable.from_rates(GS3_RATES)
        with pytest.raises(ConfigurationError):
            table.lookup(-1.0)

    def test_describe_mentions_every_rate(self):
        text = SectionTable.from_rates(GS3_RATES).describe()
        for rate in (20, 24, 30, 40, 60):
            assert f"{rate} Hz" in text

    def test_min_max_rates(self):
        table = SectionTable.from_rates(GS3_RATES)
        assert table.min_rate_hz == 20.0
        assert table.max_rate_hz == 60.0
