"""Tests for the fault-injection subsystem and the governor watchdog."""

import pytest

from repro.analysis.export import session_summary_dict
from repro.core.content_rate import ContentRateMeter, MeterConfig
from repro.core.governor import GovernorPolicy
from repro.core.manager import ContentCentricManager, ManagerConfig
from repro.core.watchdog import (
    GovernorWatchdog,
    STATE_FAILSAFE,
    STATE_NOMINAL,
    STATE_RETRYING,
    WatchdogConfig,
)
from repro.display.panel import DisplayPanel
from repro.display.presets import GALAXY_S3_PANEL
from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    MeteringError,
    ReproError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultWindow,
    SITE_METER_FAIL,
    SITE_PANEL_REFUSE,
    SITE_TOUCH_DROP,
)
from repro.graphics.framebuffer import Framebuffer
from repro.inputs.monkey import MonkeyConfig
from repro.inputs.touch import (
    TouchEvent,
    TouchKind,
    TouchScript,
    TouchSource,
)
from repro.sim.engine import Simulator
from repro.sim.session import SessionConfig, run_session


class TestErrorContext:
    def test_default_context_empty_dict(self):
        err = ReproError("boom")
        assert err.context == {}
        assert str(err) == "boom"

    def test_context_stored_and_copied(self):
        ctx = {"subsystem": "meter", "sim_time_s": 1.5}
        err = MeteringError("fail", context=ctx)
        assert err.context == ctx
        ctx["subsystem"] = "mutated"
        assert err.context["subsystem"] == "meter"

    def test_fault_injection_error_is_repro_error(self):
        assert issubclass(FaultInjectionError, ReproError)


class TestFaultPlan:
    def test_defaults_inactive(self):
        plan = FaultPlan()
        assert not plan.any_active()

    def test_rate_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(meter_fail=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(touch_drop=-0.1)

    def test_parse_simple_spec(self):
        plan = FaultPlan.parse(
            "panel_refuse=0.05,meter_fail=0.01,touch_drop=0.1", seed=9)
        assert plan.panel_refuse == 0.05
        assert plan.meter_fail == 0.01
        assert plan.touch_drop == 0.1
        assert plan.seed == 9
        assert plan.any_active()

    def test_parse_window_spec(self):
        plan = FaultPlan.parse("meter_fail@10:20=1.0")
        assert plan.meter_fail == 0.0
        assert plan.windows == (FaultWindow(SITE_METER_FAIL, 10.0,
                                            20.0, 1.0),)
        assert plan.rate_at(SITE_METER_FAIL, 9.9) == 0.0
        assert plan.rate_at(SITE_METER_FAIL, 10.0) == 1.0
        assert plan.rate_at(SITE_METER_FAIL, 20.0) == 0.0

    def test_parse_magnitude_keys(self):
        plan = FaultPlan.parse("touch_delay=0.5,touch_delay_max_s=0.8")
        assert plan.touch_delay_max_s == 0.8

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("panel_explode=0.5")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("meter_fail=lots")

    def test_parse_rejects_bad_window(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("meter_fail@10=1.0")

    def test_window_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultWindow(SITE_METER_FAIL, 5.0, 5.0, 1.0)
        with pytest.raises(FaultInjectionError):
            FaultWindow("bogus", 0.0, 1.0, 1.0)

    def test_describe_mentions_active_sites(self):
        plan = FaultPlan.parse("meter_fail=0.25,touch_drop@1:2=1.0",
                               seed=3)
        text = plan.describe()
        assert "meter_fail=0.25" in text
        assert "touch_drop@1:2=1" in text
        assert "seed 3" in text


class TestFaultInjector:
    def test_zero_rate_never_fires_or_draws(self):
        injector = FaultInjector(FaultPlan())
        for t in range(100):
            assert not injector.fires(SITE_METER_FAIL, float(t))
        assert injector.total_faults == 0
        assert injector.timeline == ()

    def test_rate_one_always_fires(self):
        injector = FaultInjector(FaultPlan(meter_fail=1.0))
        assert all(injector.fires(SITE_METER_FAIL, float(t))
                   for t in range(10))
        assert injector.count(SITE_METER_FAIL) == 10

    def test_same_seed_same_timeline(self):
        plan = FaultPlan(meter_fail=0.3, touch_drop=0.4, seed=11)
        a, b = FaultInjector(plan), FaultInjector(plan)
        times = [0.1 * i for i in range(200)]
        for t in times:
            assert a.fires(SITE_METER_FAIL, t) == \
                b.fires(SITE_METER_FAIL, t)
            assert a.fires(SITE_TOUCH_DROP, t) == \
                b.fires(SITE_TOUCH_DROP, t)
        assert a.timeline == b.timeline
        assert a.counts == b.counts

    def test_different_seed_different_timeline(self):
        times = [0.1 * i for i in range(300)]

        def timeline(seed):
            injector = FaultInjector(FaultPlan(meter_fail=0.3,
                                               seed=seed))
            for t in times:
                injector.fires(SITE_METER_FAIL, t)
            return injector.timeline

        assert timeline(1) != timeline(2)

    def test_sites_have_independent_streams(self):
        plan = FaultPlan(meter_fail=0.3, touch_drop=0.3, seed=5)
        lone = FaultInjector(plan)
        mixed = FaultInjector(plan)
        times = [0.05 * i for i in range(200)]
        lone_fires = [lone.fires(SITE_TOUCH_DROP, t) for t in times]
        mixed_fires = []
        for t in times:
            mixed.fires(SITE_METER_FAIL, t)  # interleave other site
            mixed_fires.append(mixed.fires(SITE_TOUCH_DROP, t))
        assert lone_fires == mixed_fires

    def test_magnitude_drawn_and_recorded(self):
        injector = FaultInjector(FaultPlan(touch_delay=1.0))
        assert injector.fires("touch_delay", 0.0, magnitude_max_s=0.5)
        assert 0.0 <= injector.last_magnitude() < 0.5
        assert injector.timeline[0].magnitude_s == \
            injector.last_magnitude()

    def test_summary_dict(self):
        injector = FaultInjector(FaultPlan(meter_fail=1.0))
        injector.fires(SITE_METER_FAIL, 0.0)
        assert injector.summary_dict() == {
            "injected_total": 1,
            "injected_by_site": {SITE_METER_FAIL: 1},
        }


class TestPanelFaults:
    def _panel(self, plan):
        sim = Simulator()
        injector = FaultInjector(plan) if plan else None
        return sim, DisplayPanel(sim, GALAXY_S3_PANEL,
                                 injector=injector)

    def test_refusal_drops_the_request(self):
        sim, panel = self._panel(FaultPlan(panel_refuse=1.0))
        panel.start()
        panel.set_refresh_rate(20.0)
        sim.run_until(1.0)
        assert panel.refresh_rate_hz == 60.0
        assert panel.refused_switches == 1
        assert panel.rate_switches == 0

    def test_no_injector_behaviour_unchanged(self):
        sim, panel = self._panel(None)
        panel.start()
        panel.set_refresh_rate(20.0)
        sim.run_until(1.0)
        assert panel.refresh_rate_hz == 20.0
        assert panel.refused_switches == 0

    def test_latency_jitter_delays_the_switch(self):
        sim, panel = self._panel(FaultPlan(panel_latency=1.0,
                                           panel_latency_max_s=0.5))
        panel.start()
        panel.set_refresh_rate(20.0)
        switch_times = []
        panel.add_rate_change_listener(
            lambda time, rate: switch_times.append((time, rate)))
        sim.run_until(2.0)
        assert panel.refresh_rate_hz == 20.0
        assert panel.delayed_switches >= 1
        # Without the fault the switch lands exactly at the first
        # V-Sync (1/60 s); injected latency pushes it strictly later.
        first_vsync = 1.0 / 60.0
        assert switch_times[0][0] > first_vsync
        assert switch_times[0][0] < first_vsync + 0.5 + 1e-9


class TestMeterFaults:
    def _meter(self, plan):
        fb = Framebuffer(16, 16)
        injector = FaultInjector(plan) if plan else None
        return ContentRateMeter(fb, MeterConfig(sample_count=64),
                                injector=injector)

    def test_read_raises_metering_error_with_context(self):
        meter = self._meter(FaultPlan(meter_fail=1.0))
        with pytest.raises(MeteringError) as excinfo:
            meter.content_rate(1.25)
        assert excinfo.value.context["subsystem"] == "meter"
        assert excinfo.value.context["sim_time_s"] == 1.25
        assert meter.read_failures == 1

    def test_zero_rate_reads_clean(self):
        meter = self._meter(FaultPlan())
        assert meter.content_rate(1.0) == 0.0
        assert meter.read_failures == 0

    def test_window_gates_failures(self):
        meter = self._meter(FaultPlan.parse("meter_fail@2:3=1.0"))
        assert meter.content_rate(1.0) == 0.0
        with pytest.raises(MeteringError):
            meter.content_rate(2.5)
        assert meter.content_rate(3.5) == 0.0


class TestTouchFaults:
    def _run_source(self, plan, n=20):
        sim = Simulator()
        script = TouchScript([TouchEvent(time=0.5 * i + 0.25)
                              for i in range(n)])
        injector = FaultInjector(plan) if plan else None
        source = TouchSource(sim, script, injector=injector)
        received = []
        source.add_listener(lambda event: received.append(event))
        source.start()
        sim.run_until(0.5 * n + 5.0)
        return source, received

    def test_drop_all(self):
        source, received = self._run_source(FaultPlan(touch_drop=1.0))
        assert received == []
        assert source.dropped == 20
        assert source.delivered == 0

    def test_drop_partial_deterministic(self):
        plan = FaultPlan(touch_drop=0.5, seed=3)
        source_a, received_a = self._run_source(plan)
        source_b, received_b = self._run_source(plan)
        assert 0 < source_a.dropped < 20
        assert source_a.dropped == source_b.dropped
        assert [e.time for e in received_a] == \
            [e.time for e in received_b]

    def test_delay_shifts_delivery(self):
        plan = FaultPlan(touch_delay=1.0, touch_delay_max_s=0.2)
        source, received = self._run_source(plan, n=10)
        assert source.delivered == 10
        assert source.delayed >= 1
        original = [0.5 * i + 0.25 for i in range(10)]
        for event, scripted in zip(received, original):
            assert scripted <= event.time < scripted + 0.2

    def test_no_injector_delivers_everything(self):
        source, received = self._run_source(None)
        assert source.delivered == 20
        assert source.dropped == 0


class _FlakyPolicy(GovernorPolicy):
    """Test double: fails on demand, counts probes."""

    name = "flaky"

    def __init__(self):
        self.failing = False
        self.probes = 0
        self.rate = 24.0

    def select_rate(self, now):
        self.probes += 1
        if self.failing:
            raise MeteringError("meter down",
                                context={"subsystem": "meter",
                                         "sim_time_s": now})
        return self.rate


class TestWatchdogUnit:
    def _watchdog(self, **kwargs):
        inner = _FlakyPolicy()
        config = WatchdogConfig(fail_threshold=3,
                                backoff_initial_s=0.2,
                                backoff_multiplier=2.0,
                                backoff_max_s=1.0, **kwargs)
        return inner, GovernorWatchdog(inner, failsafe_rate_hz=60.0,
                                       config=config)

    def test_transparent_when_healthy(self):
        inner, dog = self._watchdog()
        assert dog.name == inner.name
        assert dog.select_rate(0.0) == 24.0
        assert dog.state == STATE_NOMINAL
        assert dog.meter_failures == 0

    def test_holds_last_good_rate_while_retrying(self):
        inner, dog = self._watchdog()
        dog.select_rate(0.0)
        inner.failing = True
        assert dog.select_rate(0.2) == 24.0  # first failure: hold
        assert dog.state == STATE_RETRYING
        assert dog.consecutive_failures == 1

    def test_failsafe_after_threshold_and_recovery(self):
        inner, dog = self._watchdog()
        dog.select_rate(0.0)
        inner.failing = True
        dog.select_rate(0.2)            # fail 1 -> retry at 0.4
        dog.select_rate(0.4)            # fail 2 -> retry at 0.8
        assert dog.state == STATE_RETRYING
        dog.select_rate(0.8)            # fail 3 -> failsafe
        assert dog.state == STATE_FAILSAFE
        assert dog.failsafe_entries == 1
        assert dog.select_rate(1.0) == 60.0  # pinned at max
        inner.failing = False
        # Next allowed probe succeeds: control re-engages at once.
        assert dog.select_rate(2.0) == 24.0
        assert dog.state == STATE_NOMINAL
        assert dog.recoveries == 1
        assert dog.consecutive_failures == 0

    def test_backoff_gates_probes(self):
        inner, dog = self._watchdog()
        dog.select_rate(0.0)
        inner.failing = True
        dog.select_rate(0.2)            # probe (fail), retry at 0.4
        probes = inner.probes
        dog.select_rate(0.3)            # inside backoff: no probe
        assert inner.probes == probes
        dog.select_rate(0.4)            # backoff expired: probes again
        assert inner.probes == probes + 1

    def test_backoff_bounded(self):
        inner, dog = self._watchdog()
        inner.failing = True
        now = 0.0
        for _ in range(10):
            dog.select_rate(now)
            now += 5.0  # always past any backoff
        # Backoff is capped at backoff_max_s regardless of streak.
        dog.select_rate(now)
        assert dog.select_rate(now + 0.99) == 60.0  # still backed off
        probes = inner.probes
        dog.select_rate(now + 1.01)     # past the 1.0 s cap: probes
        assert inner.probes == probes + 1

    def test_transitions_recorded(self):
        inner, dog = self._watchdog()
        dog.select_rate(0.0)
        inner.failing = True
        for t in (0.2, 0.4, 0.8):
            dog.select_rate(t)
        inner.failing = False
        dog.select_rate(3.0)
        states = [state for _, state in dog.transitions]
        assert states == [STATE_RETRYING, STATE_FAILSAFE,
                          STATE_NOMINAL]

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(fail_threshold=0)
        with pytest.raises(ConfigurationError):
            WatchdogConfig(backoff_multiplier=0.5)


NO_TOUCH = MonkeyConfig(duration_s=20.0, events_per_s=0.0)


class TestSessionFaults:
    def _config(self, **kwargs):
        defaults = dict(app="Facebook", governor="section",
                        duration_s=20.0, seed=1, monkey=NO_TOUCH)
        defaults.update(kwargs)
        return SessionConfig(**defaults)

    def test_zero_fault_plan_bit_identical_to_disabled(self):
        pristine = run_session(self._config())
        zeroed = run_session(self._config(faults=FaultPlan()))
        assert session_summary_dict(pristine) == \
            session_summary_dict(zeroed)
        p_times, p_rates = pristine.panel.rate_history.transitions
        z_times, z_rates = zeroed.panel.rate_history.transitions
        assert p_times.tolist() == z_times.tolist()
        assert p_rates.tolist() == z_rates.tolist()

    def test_deterministic_fault_replay(self):
        config = self._config(
            faults=FaultPlan(meter_fail=0.2, touch_drop=0.3, seed=17),
            monkey=None)
        a = run_session(config)
        b = run_session(config)
        assert a.injector.timeline == b.injector.timeline
        assert a.watchdog.transitions == b.watchdog.transitions
        assert session_summary_dict(a) == session_summary_dict(b)
        assert a.injector.total_faults > 0

    def test_watchdog_burst_failsafe_and_recovery(self):
        burst = FaultPlan.parse("meter_fail@5:10=1.0")
        result = run_session(self._config(faults=burst))
        faults = result.fault_summary_dict()
        assert faults["meter_failures"] > 0
        assert faults["failsafe_entries"] >= 1
        assert faults["recoveries"] >= 1
        assert faults["watchdog_state"] == "nominal"
        history = result.panel.rate_history
        # Facebook idles at ~1 fps: section control sits at the 20 Hz
        # floor before the burst, is pinned at the 60 Hz maximum while
        # the meter is down, and returns to the floor after recovery.
        assert history.sample([4.0])[0] == 20.0
        assert history.sample([8.0])[0] == 60.0
        assert history.sample([15.0])[0] == 20.0

    def test_burst_counters_surfaced_in_summary(self):
        burst = FaultPlan.parse("meter_fail@5:10=1.0")
        summary = session_summary_dict(
            run_session(self._config(faults=burst)))
        assert summary["faults"]["failsafe_entries"] >= 1
        assert summary["faults"]["recoveries"] >= 1
        assert summary["faults"]["injected_by_site"] == \
            {"meter_fail": summary["faults"]["meter_failures"]}

    def test_watchdog_disabled_lets_faults_crash(self):
        always_failing = FaultPlan(meter_fail=1.0)
        with pytest.raises(MeteringError):
            run_session(self._config(faults=always_failing,
                                     watchdog=False))

    def test_touch_drop_reduces_boosts(self):
        config = dict(app="Jelly Splash", governor="section+boost",
                      duration_s=20.0, seed=2)
        clean = run_session(SessionConfig(**config))
        dropped = run_session(SessionConfig(
            **config, faults=FaultPlan(touch_drop=1.0)))
        assert dropped.driver.touch_times == ()
        assert len(clean.driver.touch_times) > 0


class TestManagerIntegration:
    def test_manager_builds_watchdog_with_injector(self):
        sim = Simulator()
        fb = Framebuffer(16, 16)
        panel = DisplayPanel(sim, GALAXY_S3_PANEL)
        injector = FaultInjector(FaultPlan(meter_fail=0.5))
        mgr = ContentCentricManager(
            sim, panel, fb,
            config=ManagerConfig(meter=MeterConfig(sample_count=64)),
            injector=injector)
        assert isinstance(mgr.policy, GovernorWatchdog)
        assert mgr.watchdog is mgr.policy
        assert mgr.policy.failsafe_rate_hz == 60.0

    def test_manager_without_injector_unwrapped(self):
        sim = Simulator()
        fb = Framebuffer(16, 16)
        panel = DisplayPanel(sim, GALAXY_S3_PANEL)
        mgr = ContentCentricManager(
            sim, panel, fb,
            config=ManagerConfig(meter=MeterConfig(sample_count=64)))
        assert mgr.watchdog is None
        assert not isinstance(mgr.policy, GovernorWatchdog)
