"""Tests for the lockstep vector engine (`repro.sim.vector`).

The contract under test is the acceptance bar of the vector engine:
every eligible spec produces a summary **byte-identical** to the
scalar reference path — across the whole 30-app catalog, every
builtin governor, every meter configuration, and any slicing of the
advance loop — while ineligible specs (faults, trace replay,
stateful governors) transparently fall back to the scalar path.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.profile import AppCategory, AppProfile, RenderStyle
from repro.core.double_buffer import DoubleBuffer, SampledDoubleBuffer
from repro.core.grid import GridComparator, GridSpec
from repro.errors import ConfigurationError, MeteringError, SimulationError
from repro.faults.plan import FaultPlan
from repro.pipeline.apps import APPS
from repro.pipeline.eligibility import (
    VECTOR_GOVERNORS,
    probe_vector_eligibility,
    vector_eligible,
)
from repro.sim.batch import run_batch
from repro.sim.runner import SessionRunner, resume_runner
from repro.sim.session import MeterConfig, SessionConfig
from repro.sim.tracing import EventLog, TimeSeries
from repro.sim.vector import (
    VectorEngine,
    VectorRunner,
    run_vector_batch,
    run_vector_session,
)
from repro.analysis.export import session_summary_dict

GOLDEN_TRACE = "trace:tests/data/golden.rptrace"

#: Every builtin governor, vectorizable or not.
ALL_GOVERNORS = ("fixed", "section", "section+boost",
                 "section+hysteresis", "naive", "oracle", "e3")

FALLBACK_GOVERNORS = tuple(g for g in ALL_GOVERNORS
                           if g not in VECTOR_GOVERNORS)


def _summary(result):
    return session_summary_dict(result)


def _scalar(config):
    return _summary(SessionRunner(config).run())


def _vector(config):
    return _summary(run_vector_session(config))


# ----------------------------------------------------------------------
# Eligibility probe
# ----------------------------------------------------------------------
class TestEligibility:
    def test_plain_catalog_spec_is_eligible(self):
        cfg = SessionConfig(app="Facebook", governor="section",
                            duration_s=5.0, seed=1)
        verdict = probe_vector_eligibility(cfg)
        assert verdict.eligible
        assert verdict.reasons == ()
        assert bool(verdict)

    def test_each_disqualifier_is_reported(self):
        cfg = SessionConfig(app=GOLDEN_TRACE, governor="oracle",
                            duration_s=5.0, seed=1,
                            faults=FaultPlan(meter_fail=0.5, seed=1))
        verdict = probe_vector_eligibility(cfg)
        assert not verdict.eligible
        text = " ".join(verdict.reasons)
        assert "fault" in text
        assert "governor" in text
        assert len(verdict.reasons) >= 3

    @pytest.mark.parametrize("governor", FALLBACK_GOVERNORS)
    def test_stateful_governors_are_ineligible(self, governor):
        cfg = SessionConfig(app="Facebook", governor=governor,
                            duration_s=5.0, seed=1)
        assert not vector_eligible(cfg)

    def test_vector_runner_requires_eligibility(self):
        cfg = SessionConfig(app="Facebook",
                            governor="section+hysteresis",
                            duration_s=5.0, seed=1)
        with pytest.raises(ConfigurationError, match="not vector-eligible"):
            VectorRunner(cfg)


# ----------------------------------------------------------------------
# Byte-equivalence: the acceptance bar
# ----------------------------------------------------------------------
class TestCatalogEquivalence:
    @pytest.mark.parametrize("app", sorted(APPS.names()))
    def test_every_catalog_app_is_byte_identical(self, app):
        # Rotate the vectorizable governors across the catalog so the
        # matrix covers every (well-known app) x (governor) pairing
        # over the suite without running 30 x 4 sessions.
        governor = VECTOR_GOVERNORS[hash(app) % len(VECTOR_GOVERNORS)]
        cfg = SessionConfig(app=app, governor=governor,
                            duration_s=4.0, seed=11)
        assert _scalar(cfg) == _vector(cfg)

    @pytest.mark.parametrize("governor", ALL_GOVERNORS)
    def test_every_builtin_governor_is_byte_identical(self, governor):
        # Fallback governors go through the scalar path inside
        # run_vector_session; the summary must be identical either way.
        cfg = SessionConfig(app="Tiny Flashlight", governor=governor,
                            duration_s=6.0, seed=3)
        assert _scalar(cfg) == _vector(cfg)

    @pytest.mark.parametrize("kwargs", [
        {"status_bar": True},
        {"meter": MeterConfig(min_changed_cells=3)},
        {"meter": MeterConfig(store_full_frames=False)},
        {"track_oled": True},
        {"status_bar": True, "track_oled": True,
         "meter": MeterConfig(min_changed_cells=3)},
    ], ids=["status-bar", "min-changed-cells", "sampled-store",
            "oled", "combined"])
    def test_meter_and_observer_variants(self, kwargs):
        # These variants exercise the bulk idle-submit replay gate:
        # an OLED tracker or a second app changes the listener
        # topology, min_changed_cells changes the comparator
        # accounting, a sampled store changes the capture kernel.
        cfg = SessionConfig(app="Tiny Flashlight",
                            governor="section+boost",
                            duration_s=8.0, seed=5, **kwargs)
        assert _scalar(cfg) == _vector(cfg)

    def test_oled_tracker_disables_bulk_idle_replay(self):
        quiet = SessionConfig(app="Tiny Flashlight", governor="fixed",
                              duration_s=8.0, seed=5)
        watched = SessionConfig(app="Tiny Flashlight", governor="fixed",
                                duration_s=8.0, seed=5, track_oled=True)
        assert VectorRunner(quiet)._idle_skip_ok
        assert not VectorRunner(watched)._idle_skip_ok

    def test_faulted_spec_falls_back_and_matches(self):
        cfg = SessionConfig(app="Facebook", governor="section",
                            duration_s=5.0, seed=2,
                            faults=FaultPlan(meter_fail=0.3, seed=2))
        assert not vector_eligible(cfg)
        assert _scalar(cfg) == _vector(cfg)

    def test_trace_replay_falls_back_and_matches(self):
        cfg = SessionConfig(app=GOLDEN_TRACE, governor="section",
                            duration_s=4.0, seed=1)
        assert not vector_eligible(cfg)
        assert _scalar(cfg) == _vector(cfg)

    def test_ltpo_panel_is_byte_identical(self):
        from repro.pipeline import PANELS
        panel = PANELS.get("ltpo-120")()
        cfg = SessionConfig(app="Tiny Flashlight", governor="fixed",
                            duration_s=6.0, seed=4, panel=panel)
        assert _scalar(cfg) == _vector(cfg)


# ----------------------------------------------------------------------
# The checkpoint/digest contract
# ----------------------------------------------------------------------
class TestDigestContract:
    def test_digests_match_at_every_advance_boundary(self):
        cfg = SessionConfig(app="Tiny Flashlight", governor="section",
                            duration_s=6.0, seed=9)
        scalar = SessionRunner(cfg)
        vector = VectorRunner(cfg)
        for until in (0.5, 1.7, 3.0, 4.25, 6.0):
            scalar.advance(until)
            vector.advance(until)
            assert scalar.now == vector.now
            assert (scalar.sim.events_processed
                    == vector.sim.events_processed), until
            assert scalar.state_digest() == vector.state_digest(), until
        assert vector.skipped_ticks > 0
        assert _summary(scalar.finish()) == _summary(vector.finish())

    def test_checkpoint_documents_are_engine_agnostic(self):
        cfg = SessionConfig(app="Weather", governor="section+boost",
                            duration_s=6.0, seed=6)
        scalar = SessionRunner(cfg)
        vector = VectorRunner(cfg)
        scalar.advance(3.0)
        vector.advance(3.0)
        assert (scalar.checkpoint_document()
                == vector.checkpoint_document())

    @pytest.mark.parametrize("engine", ["scalar", "auto", "vector"])
    def test_resume_verifies_across_engines(self, engine):
        cfg = SessionConfig(app="Tiny Flashlight", governor="section",
                            duration_s=6.0, seed=9)
        source = SessionRunner(cfg)
        source.advance(2.5)
        doc = source.checkpoint_document()
        resumed = resume_runner(doc, engine=engine)
        if engine == "scalar":
            assert not isinstance(resumed, VectorRunner)
        else:
            assert isinstance(resumed, VectorRunner)
        assert _summary(resumed.run()) == _summary(source.run())

    def test_auto_resume_falls_back_for_ineligible_spec(self):
        cfg = SessionConfig(app="Facebook",
                            governor="section+hysteresis",
                            duration_s=4.0, seed=1)
        source = SessionRunner(cfg)
        source.advance(1.5)
        resumed = resume_runner(source.checkpoint_document(),
                                engine="auto")
        assert not isinstance(resumed, VectorRunner)
        assert _summary(resumed.run()) == _summary(source.run())


# ----------------------------------------------------------------------
# Property: slicing never changes the summary
# ----------------------------------------------------------------------
class TestSliceInvariance:
    @settings(deadline=None, max_examples=12)
    @given(boundaries=st.lists(
        st.floats(min_value=0.01, max_value=5.99,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=6),
        seed=st.integers(0, 2**16 - 1))
    def test_skipped_ticks_never_change_the_summary(self, boundaries,
                                                    seed):
        cfg = SessionConfig(app="Tiny Flashlight",
                            governor="section+boost",
                            duration_s=6.0, seed=seed)
        reference = _scalar(cfg)
        vector = VectorRunner(cfg)
        for until in sorted(boundaries):
            vector.advance(until)
        assert _summary(vector.run()) == reference

    @pytest.mark.parametrize("slice_s", [0.25, 1.0, 3.0, 10.0])
    def test_engine_slice_is_invisible(self, slice_s):
        cfgs = [SessionConfig(app="Tiny Flashlight", governor="fixed",
                              duration_s=5.0, seed=s)
                for s in range(3)]
        reference = [
            {"entry": json.loads(json.dumps(e)), "events": []}
            for e in run_batch(cfgs, workers=1)]
        assert run_vector_batch(cfgs, slice_s=slice_s) == reference


# ----------------------------------------------------------------------
# Batch routing and cache composition
# ----------------------------------------------------------------------
class TestBatchRouting:
    def _mixed_configs(self):
        return [
            SessionConfig(app="Tiny Flashlight", governor="fixed",
                          duration_s=3.0, seed=0),
            SessionConfig(app="Facebook", governor="section+hysteresis",
                          duration_s=3.0, seed=1),       # fallback
            SessionConfig(app="Weather", governor="naive",
                          duration_s=3.0, seed=2),
            SessionConfig(app=GOLDEN_TRACE, governor="section",
                          duration_s=3.0, seed=3),       # fallback
        ]

    @pytest.mark.parametrize("engine", ["auto", "vector"])
    def test_mixed_batch_matches_scalar_in_order(self, engine):
        cfgs = self._mixed_configs()
        assert (run_batch(cfgs, workers=1, engine=engine)
                == run_batch(cfgs, workers=1))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            run_batch(self._mixed_configs()[:1], engine="warp")

    def test_cache_entries_are_engine_agnostic(self, tmp_path):
        from repro.cache import ResultCache
        cfgs = self._mixed_configs()[:3]
        cold = run_batch(cfgs, workers=1, engine="vector",
                         cache=ResultCache(tmp_path / "c"))
        warm_cache = ResultCache(tmp_path / "c")
        warm = run_batch(cfgs, workers=1, cache=warm_cache)
        assert warm == cold
        stats = warm_cache.stats_dict()
        assert stats["hits"] == len(cfgs)
        assert stats["misses"] == 0

    def test_vector_batch_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_vector_batch([])

    def test_engine_reports_skip_diagnostics(self):
        cfgs = [SessionConfig(app="Tiny Flashlight", governor="fixed",
                              duration_s=4.0, seed=s)
                for s in range(2)]
        engine = VectorEngine(cfgs)
        engine.run()
        assert all(r.skipped_ticks > 0 for r in engine.runners)


# ----------------------------------------------------------------------
# Bulk accounting primitives behind the idle-submit replay
# ----------------------------------------------------------------------
class TestBulkAccounting:
    def test_event_log_extend_equals_appends(self):
        a, b = EventLog("a"), EventLog("b")
        times = [0.1, 0.5, 0.5, 1.25]
        for t in times:
            a.append(t)
        b.extend(times)
        assert list(a.times) == list(b.times)

    def test_event_log_extend_rejects_time_travel(self):
        log = EventLog("log")
        log.append(2.0)
        with pytest.raises(SimulationError, match="backwards"):
            log.extend([2.5, 2.4])
        with pytest.raises(SimulationError, match="backwards"):
            log.extend([1.0])
        assert list(log.times) == [2.0]

    def test_time_series_extend_equals_appends(self):
        a, b = TimeSeries("a"), TimeSeries("b")
        for t, v in [(0.2, 60.0), (0.4, 40.0), (0.6, 40.0)]:
            a.append(t, v)
        b.extend([0.2, 0.4, 0.6], [60.0, 40.0, 40.0])
        assert list(a.times) == list(b.times)
        assert list(a.values) == list(b.values)

    def test_time_series_extend_validates(self):
        series = TimeSeries("s")
        with pytest.raises(SimulationError, match="backwards"):
            series.extend([1.0, 0.5], [1.0, 2.0])
        with pytest.raises(SimulationError, match="extend"):
            series.extend([1.0], [1.0, 2.0])
        assert len(series) == 0

    def test_comparator_note_equal_counts_in_bulk(self):
        comparator = GridComparator(GridSpec((8, 8), 2, 2))
        comparator.note_equal()
        comparator.note_equal(41)
        assert comparator.comparisons == 42
        assert comparator.mismatches == 0

    @pytest.mark.parametrize("buffer_cls", [
        lambda: DoubleBuffer((4, 4, 3)),
        lambda: SampledDoubleBuffer(GridSpec((4, 4), 2, 2)),
    ], ids=["full", "sampled"])
    def test_redundant_capture_counts_in_bulk(self, buffer_cls):
        import numpy as np
        buf = buffer_cls()
        with pytest.raises(MeteringError):
            buf.note_redundant_capture(3)
        buf.capture(np.zeros((4, 4, 3), dtype=np.uint8))
        captures, copied = buf.captures, buf.bytes_copied
        buf.note_redundant_capture(5)
        assert buf.captures == captures + 5
        assert buf.bytes_copied == copied + 5 * (copied // captures)


# ----------------------------------------------------------------------
# The bench workload stays vector-eligible
# ----------------------------------------------------------------------
class TestBenchWorkload:
    def test_bench_vector_batch_is_eligible(self):
        from repro.bench import _vector_batch_configs
        for cfg in _vector_batch_configs(2, 5.0):
            assert vector_eligible(cfg)

    def test_bench_profile_is_idle_heavy(self):
        from repro.bench import VECTOR_BATCH_PROFILE
        assert VECTOR_BATCH_PROFILE.idle_content_fps <= 0.1
        assert VECTOR_BATCH_PROFILE.idle_submit_fps > 0
        assert VECTOR_BATCH_PROFILE.render_style is RenderStyle.SMALL_REGION
        assert VECTOR_BATCH_PROFILE.category is AppCategory.GENERAL
        assert isinstance(VECTOR_BATCH_PROFILE, AppProfile)
