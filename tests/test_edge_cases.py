"""Edge-case coverage across modules: branches the main suites skip."""

import numpy as np
import pytest

import repro
from repro.core.grid import PAPER_PIXEL_BUDGETS, GridSpec
from repro.errors import ConfigurationError
from repro.inputs.monkey import MonkeyConfig, MonkeyScriptGenerator
from repro.sim.session import SessionConfig, run_session
from repro.sim.tracing import StepSeries


class TestGridEdges:
    def test_paper_budget_labels(self):
        assert set(PAPER_PIXEL_BUDGETS) == {"2K", "4K", "9K", "36K",
                                            "921K"}
        assert PAPER_PIXEL_BUDGETS["921K"] == 921_600

    def test_one_sample_grid(self):
        grid = GridSpec.from_sample_count((64, 64), 1)
        assert grid.sample_count == 1
        sampled = grid.sample(np.zeros((64, 64, 3), dtype=np.uint8))
        assert sampled.shape == (1, 1, 3)

    def test_cell_size_larger_than_buffer(self):
        grid = GridSpec.from_cell_size((8, 8), 100)
        assert grid.sample_count == 1

    def test_non_square_buffer_non_square_grid(self):
        grid = GridSpec.from_sample_count((10, 1000), 100)
        # Square cells: ~1 row x ~100 cols.
        assert grid.grid_height <= 3
        assert grid.grid_width >= 30


class TestSectionTableSingleLevelSession:
    def test_section_governor_on_fixed_panel_is_harmless(self):
        # A one-level panel leaves the governor nothing to do; the
        # system degrades to the fixed baseline rather than failing.
        result = run_session(SessionConfig(
            app="Facebook", governor="section",
            duration_s=5.0, seed=1, panel=repro.FIXED_60_PANEL))
        assert result.mean_refresh_rate_hz == 60.0
        assert result.panel.rate_switches == 0


class TestMonkeyEdges:
    def test_scroll_truncated_at_session_end(self):
        cfg = MonkeyConfig(duration_s=10.0, events_per_s=5.0,
                           scroll_fraction=1.0, scroll_duration_s=5.0,
                           min_gap_s=0.0, warmup_s=0.0)
        script = MonkeyScriptGenerator(cfg).generate(3)
        for event in script.scrolls():
            assert event.time + event.duration_s <= 10.0 + 1e-9

    def test_dense_script_respects_duration(self):
        # Scroll gestures consume wall-time, so a nominally dense
        # script saturates well below rate x duration.
        cfg = MonkeyConfig(duration_s=5.0, events_per_s=20.0,
                           scroll_fraction=0.0, min_gap_s=0.0,
                           warmup_s=0.0)
        script = MonkeyScriptGenerator(cfg).generate(4)
        assert len(script) > 50
        assert max(script.times) < 5.0


class TestStepSeriesEdges:
    def test_integrate_empty_window(self):
        s = StepSeries(initial=10.0)
        assert s.integrate(2.0, 2.0) == 0.0

    def test_sample_empty_list(self):
        s = StepSeries(initial=10.0)
        assert len(s.sample([])) == 0

    def test_many_transitions_integrate_exactly(self):
        s = StepSeries(initial=0.0)
        for i in range(1, 101):
            s.set(float(i), float(i % 5))
        total = s.integrate(0.0, 101.0)
        manual = sum((i % 5) * 1.0 for i in range(1, 101))
        assert total == pytest.approx(manual)


class TestSessionConfigEdges:
    def test_custom_monkey_overrides_profile(self):
        cfg = SessionConfig(app="Facebook", duration_s=10.0,
                            monkey=MonkeyConfig(duration_s=10.0,
                                                events_per_s=0.0))
        assert cfg.resolve_monkey().events_per_s == 0.0

    def test_profile_object_accepted(self):
        profile = repro.app_profile("Facebook")
        cfg = SessionConfig(app=profile, duration_s=5.0)
        assert cfg.resolve_profile() is profile

    def test_decision_period_plumbs_through(self):
        slow = run_session(SessionConfig(
            app="Facebook", governor="section", duration_s=8.0,
            seed=1, decision_period_s=2.0))
        fast = run_session(SessionConfig(
            app="Facebook", governor="section", duration_s=8.0,
            seed=1, decision_period_s=0.1))
        assert len(fast.driver.decisions) > len(slow.driver.decisions)

    def test_meter_config_plumbs_through(self):
        from repro.core.content_rate import MeterConfig
        result = run_session(SessionConfig(
            app="Facebook", governor="fixed", duration_s=4.0, seed=1,
            meter=MeterConfig(sample_count=2304)))
        assert result.meter.grid.sample_count <= 2400


class TestPowerReportEdges:
    def test_custom_model_changes_report(self):
        result = run_session(SessionConfig(
            app="Facebook", governor="fixed", duration_s=4.0, seed=1))
        cheap = repro.PowerModel(repro.PowerCalibration(
            device_base_mw=100.0))
        assert result.power_report(cheap).mean_power_mw < \
            result.power_report().mean_power_mw

    def test_evaluate_window_rejects_empty(self):
        from repro.power.model import PowerModel
        from repro.sim.tracing import EventLog
        model = PowerModel()
        profile = repro.app_profile("Facebook")
        with pytest.raises(ConfigurationError):
            model.evaluate_window(profile, StepSeries(initial=60.0),
                                  EventLog(), EventLog(), 5.0, 5.0)


class TestSurveyEdges:
    def test_single_app_survey(self):
        from repro.experiments.survey import SurveyConfig, run_survey
        survey = run_survey(SurveyConfig(apps=("Facebook",),
                                         duration_s=4.0, seed=7))
        rows = survey.measurements("section")
        assert len(rows) == 1
        assert rows[0].app_name == "Facebook"


class TestHysteresisDriverIntegration:
    def test_suppressed_downs_counted_in_session(self):
        result = run_session(SessionConfig(
            app="Jelly Splash", governor="section+hysteresis",
            duration_s=20.0, seed=4))
        policy = result.driver.policy
        assert policy.suppressed_downs >= 0
        assert "hysteresis" in result.governor_name


class TestWallpaperFullScreenVariant:
    def test_full_screen_wallpaper_always_caught(self):
        from repro.apps.wallpaper import WallpaperProfile
        wp = WallpaperProfile(name="full", frame_fps=10.0,
                              full_screen=True)
        result = run_session(SessionConfig(
            app=wp, governor="fixed", duration_s=5.0, seed=1))
        # Full-screen changes at 10 fps: meter and ground truth agree.
        measured = result.meter.total_meaningful
        actual = len(result.meaningful_compositions)
        assert measured == actual
        assert actual == pytest.approx(50, abs=3)
