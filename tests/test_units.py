"""Tests for unit validation helpers."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    VSYNC_DEADLINE_60HZ_S,
    ensure_fraction,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_positive,
    ensure_positive_int,
    hz_to_period,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(2.5, "x") == 2.5

    def test_returns_float(self):
        out = ensure_positive(3, "x")
        assert isinstance(out, float)

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"),
                                     float("inf"), "3", None, True])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_positive(bad, "x")

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="speed"):
            ensure_positive(-1, "speed")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.001, float("nan"), "0", False])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_non_negative(bad, "x")


class TestEnsureFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts(self, ok):
        assert ensure_fraction(ok, "x") == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_fraction(bad, "x")


class TestIntValidators:
    def test_positive_int(self):
        assert ensure_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.0, True, "2"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_positive_int(bad, "x")

    def test_non_negative_int_accepts_zero(self):
        assert ensure_non_negative_int(0, "x") == 0

    @pytest.mark.parametrize("bad", [-1, 0.0, False])
    def test_non_negative_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            ensure_non_negative_int(bad, "x")


class TestConversions:
    def test_hz_to_period(self):
        assert hz_to_period(60.0) == pytest.approx(1.0 / 60.0)

    def test_hz_to_period_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            hz_to_period(0.0)

    def test_vsync_deadline_matches_paper(self):
        # The paper's 16.67 ms budget at 60 Hz.
        assert math.isclose(VSYNC_DEADLINE_60HZ_S, 0.016667, rel_tol=1e-3)
