"""Cross-module integration tests: the paper's claims end-to-end.

These run short full-pipeline sessions and check the *mechanisms* the
paper's evaluation rests on, not just the plumbing:

* the naive governor deadlocks under V-Sync clipping, the section
  governor does not;
* touch boosting recovers quality around interactions;
* the oracle bounds the section governor's power from below;
* E3-style interaction control breaks video, content-centric control
  does not;
* the governed system never reorders the workload (controlled
  comparison).
"""

import pytest

from repro.apps.profile import (
    AppCategory,
    AppProfile,
    ContentProcess,
    RenderStyle,
)
from repro.core.quality import quality_vs_baseline
from repro.sim.session import SessionConfig, run_session


def run(app, governor, duration=30.0, seed=1, **kwargs):
    return run_session(SessionConfig(app=app, governor=governor,
                                     duration_s=duration, seed=seed,
                                     **kwargs))


def burst_app(idle=2.0, active=45.0, submit=0.0, touch=0.4):
    """An app whose content jumps on touch — the control stress case."""
    return AppProfile(
        name="burst-app", category=AppCategory.GENERAL,
        idle_content_fps=idle, active_content_fps=active,
        burst_duration_s=2.0,
        content_process=ContentProcess.ANIMATION,
        idle_submit_fps=submit, render_style=RenderStyle.SCENE,
        touch_events_per_s=touch, scroll_fraction=0.0)


class TestNaiveDeadlock:
    """Section 3.2's negative result, reproduced end-to-end.

    The deadlock needs two phases: an idle stretch that lets the
    governor drop the rate, then sustained high content.  Once the
    refresh is at 20 Hz, the naive rule can never measure more than
    20 fps, so it latches low; the section table's headroom lets the
    measured rate climb one section at a time back to 60 Hz.
    """

    def _idle_then_burst_app(self):
        return AppProfile(
            name="idle-burst", category=AppCategory.GENERAL,
            idle_content_fps=1.0, active_content_fps=50.0,
            burst_duration_s=8.0,
            content_process=ContentProcess.ANIMATION,
            idle_submit_fps=0.0, render_style=RenderStyle.SCENE,
            touch_events_per_s=0.25, scroll_fraction=0.0)

    def test_naive_latches_low_section_recovers(self):
        app = self._idle_then_burst_app()
        naive = run(app, "naive", duration=40.0)
        section = run(app, "section", duration=40.0)
        assert len(naive.touch_script) >= 2  # bursts really happen
        # Naive: after the initial drop, it can never climb past the
        # V-Sync clip (lowest rate >= measured 24 fps is 24 Hz).
        first_touch = naive.touch_script.times[0]
        assert naive.panel.rate_history.mean(first_touch, 40.0) < 27.0
        # Section control escapes: it reaches the panel maximum during
        # the bursts.
        _, rates = section.panel.rate_history.transitions
        assert rates.max() == 60.0
        assert section.panel.rate_history.mean(first_touch, 40.0) > \
            naive.panel.rate_history.mean(first_touch, 40.0)

    def test_naive_destroys_quality_section_preserves_it(self):
        app = self._idle_then_burst_app()
        baseline = run(app, "fixed", duration=40.0)
        naive = run(app, "naive", duration=40.0)
        section = run(app, "section", duration=40.0)
        q_naive = quality_vs_baseline(naive.mean_content_rate_fps,
                                      baseline.mean_content_rate_fps)
        q_section = quality_vs_baseline(section.mean_content_rate_fps,
                                        baseline.mean_content_rate_fps)
        assert q_naive < 0.7
        assert q_section > 0.8
        assert q_section > q_naive + 0.15


class TestTouchBoostMechanism:
    def test_boost_improves_quality_over_section_only(self):
        app = burst_app()
        baseline = run(app, "fixed", seed=3)
        section = run(app, "section", seed=3)
        boosted = run(app, "section+boost", seed=3)
        q_section = quality_vs_baseline(section.mean_content_rate_fps,
                                        baseline.mean_content_rate_fps)
        q_boost = quality_vs_baseline(boosted.mean_content_rate_fps,
                                      baseline.mean_content_rate_fps)
        assert q_boost > q_section
        assert q_boost > 0.9

    def test_boost_spends_some_of_the_saving(self):
        app = burst_app(submit=60.0)
        baseline = run(app, "fixed", seed=3)
        section = run(app, "section", seed=3)
        boosted = run(app, "section+boost", seed=3)
        p_base = baseline.power_report().mean_power_mw
        p_section = section.power_report().mean_power_mw
        p_boost = boosted.power_report().mean_power_mw
        assert p_section < p_base
        assert p_section <= p_boost <= p_base

    def test_boost_fires_on_touches(self):
        app = burst_app()
        boosted = run(app, "section+boost", seed=3)
        assert boosted.driver.policy.boosts >= len(
            boosted.touch_script)


class TestOracleBound:
    def test_oracle_quality_at_least_section(self):
        app = burst_app()
        baseline = run(app, "fixed", seed=4)
        section = run(app, "section", seed=4)
        oracle = run(app, "oracle", seed=4)
        q_section = quality_vs_baseline(section.mean_content_rate_fps,
                                        baseline.mean_content_rate_fps)
        q_oracle = quality_vs_baseline(oracle.mean_content_rate_fps,
                                       baseline.mean_content_rate_fps)
        assert q_oracle >= q_section - 0.02

    def test_oracle_saves_power_vs_fixed(self):
        app = burst_app(submit=60.0)
        baseline = run(app, "fixed", seed=4)
        oracle = run(app, "oracle", seed=4)
        assert oracle.power_report().mean_power_mw < \
            baseline.power_report().mean_power_mw


class TestContentCentricVsInteractionCentric:
    def test_e3_breaks_untouched_video_section_does_not(self):
        """The content-centric argument: MX Player plays 24 fps video
        with almost no touching.  E3 (interaction-driven) drops it to
        the panel minimum and stutters; section control reads the
        content rate and keeps 30 Hz."""
        baseline = run("MX Player", "fixed", seed=6)
        e3 = run("MX Player", "e3", seed=6)
        section = run("MX Player", "section", seed=6)
        q_e3 = quality_vs_baseline(e3.mean_content_rate_fps,
                                   baseline.mean_content_rate_fps)
        q_section = quality_vs_baseline(section.mean_content_rate_fps,
                                        baseline.mean_content_rate_fps)
        assert q_e3 < 0.9
        assert q_section > 0.97
        assert section.panel.rate_history.mean(5.0, 30.0) == \
            pytest.approx(30.0, abs=2.0)


class TestControlledComparison:
    def test_workload_identical_across_all_governors(self):
        app = burst_app()
        streams = []
        for governor in ("fixed", "section", "section+boost", "naive",
                         "oracle", "e3"):
            result = run(app, governor, duration=15.0, seed=9)
            streams.append((
                tuple(result.application.content_changes.times),
                result.touch_script.times,
            ))
        assert all(s == streams[0] for s in streams)


class TestPowerAccountingConsistency:
    def test_trace_mean_equals_report_mean(self):
        result = run("Jelly Splash", "section+boost", duration=20.0)
        import numpy as np
        _, power = result.power_trace(bin_width_s=1.0)
        assert float(np.mean(power)) == pytest.approx(
            result.power_report().mean_power_mw, rel=1e-6)

    def test_energy_monotone_in_refresh_rate(self):
        base = run("Facebook", "fixed", duration=15.0, seed=2)
        governed = run("Facebook", "section", duration=15.0, seed=2)
        assert governed.mean_refresh_rate_hz < base.mean_refresh_rate_hz
        assert governed.power_report().energy_mj < \
            base.power_report().energy_mj
