"""Tests for the parallel batch backend (`repro.sim.batch`).

The contract under test: ``run_batch(configs, workers=N)`` returns
output *byte-identical* to the serial path for every worker count,
start method, and chunking, and a worker that dies or hangs costs
exactly its own config — never the batch.

Process-pool tests use the ``fork`` start method where they need the
parent's monkeypatches visible in workers (fork inherits the patched
module; spawn re-imports it pristine); one equivalence test runs the
default ``spawn`` path end to end.
"""

import json
import os
import time

import pytest

import repro.sim.batch as batch
from repro.errors import ConfigurationError, TelemetryError
from repro.faults.plan import FaultPlan
from repro.sim.batch import (
    batch_failure_summary,
    batch_telemetry_summary,
    is_failure_record,
    run_batch,
)
from repro.sim.session import SessionConfig
from repro.telemetry import (
    MetricsRegistry,
    TelemetryConfig,
    interleave_streams,
    merge_snapshots,
)

APPS = ("Facebook", "Auction", "CGV", "Coupang")


def _configs(n=4, duration_s=3.0, telemetry=False, faults=False):
    """N small distinct configs (telemetry span-free: byte-identity)."""
    configs = []
    for i in range(n):
        plan = None
        if faults and i % 2 == 1:
            plan = FaultPlan(meter_fail=0.3, seed=i)
        configs.append(SessionConfig(
            app=APPS[i % len(APPS)],
            governor="section+hysteresis",
            duration_s=duration_s,
            seed=i,
            faults=plan,
            telemetry=(TelemetryConfig(profile_spans=False)
                       if telemetry else None)))
    return configs


def _bytes(results):
    return json.dumps(results, sort_keys=True)


class TestDeterministicMerge:
    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        """The acceptance property: faults + telemetry + streams,
        workers=2 vs workers=1, identical bytes throughout."""
        configs = _configs(telemetry=True, faults=True)
        serial_stream = tmp_path / "serial.jsonl"
        parallel_stream = tmp_path / "parallel.jsonl"
        serial = run_batch(configs, workers=1,
                           stream_path=serial_stream)
        parallel = run_batch(configs, workers=2, mp_context="fork",
                             stream_path=parallel_stream)
        assert _bytes(serial) == _bytes(parallel)
        assert serial_stream.read_text() == parallel_stream.read_text()

    def test_32_session_batch_workers_8_matches_workers_1(self):
        """The acceptance bar verbatim: a seeded 32-session batch at
        workers=8 is byte-identical to workers=1."""
        configs = [SessionConfig(app=APPS[i % len(APPS)],
                                 governor="section+boost",
                                 duration_s=2.0, seed=i)
                   for i in range(32)]
        serial = run_batch(configs, workers=1)
        parallel = run_batch(configs, workers=8, mp_context="fork")
        assert _bytes(serial) == _bytes(parallel)

    def test_worker_count_independence(self):
        configs = _configs(n=5, telemetry=True)
        two = run_batch(configs, workers=2, mp_context="fork")
        three = run_batch(configs, workers=3, mp_context="fork")
        assert _bytes(two) == _bytes(three)

    def test_spawn_context_matches_serial(self):
        configs = _configs(n=2, duration_s=2.0)
        serial = run_batch(configs, workers=1)
        spawned = run_batch(configs, workers=2, mp_context="spawn")
        assert _bytes(serial) == _bytes(spawned)

    def test_chunked_dispatch_matches_serial(self):
        configs = _configs(n=5)
        serial = run_batch(configs, workers=1)
        chunked = run_batch(configs, workers=2, mp_context="fork",
                            chunksize=2)
        assert _bytes(serial) == _bytes(chunked)

    def test_stream_is_deterministic_and_wall_free(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        run_batch(_configs(telemetry=True), workers=2,
                  mp_context="fork", stream_path=path)
        events = [json.loads(line)
                  for line in path.read_text().splitlines()]
        assert events, "telemetered batch must produce events"
        assert all("wall_s" not in event for event in events)
        sim_times = [event["sim_s"] for event in events]
        assert sim_times == sorted(sim_times)

    def test_batch_telemetry_summary_merges_in_input_order(self):
        configs = _configs(telemetry=True)
        serial = run_batch(configs, workers=1)
        parallel = run_batch(configs, workers=2, mp_context="fork")
        merged = batch_telemetry_summary(serial)
        assert merged["sessions_with_telemetry"] == len(configs)
        assert merged["events"]["total"] == sum(
            entry["telemetry"]["events"]["total"] for entry in serial)
        assert _bytes(merged) == _bytes(
            batch_telemetry_summary(parallel))

    def test_untelemetered_sessions_contribute_nothing(self):
        results = run_batch(_configs(n=2), workers=1)
        merged = batch_telemetry_summary(results)
        assert merged["sessions_with_telemetry"] == 0
        assert merged["events"]["total"] == 0


class TestMergePrimitives:
    def _snapshot(self, counter=0, gauge=0.0, observations=()):
        registry = MetricsRegistry()
        registry.counter("c").inc(counter)
        registry.gauge("g").set(gauge)
        histogram = registry.histogram("h", (0.0, 1.0, 2.0))
        for value in observations:
            histogram.observe(value)
        return registry.as_dict()

    def test_counters_add_and_gauges_take_last(self):
        merged = merge_snapshots([
            self._snapshot(counter=2, gauge=1.0),
            self._snapshot(counter=3, gauge=7.0),
        ])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 7.0

    def test_histograms_combine(self):
        merged = merge_snapshots([
            self._snapshot(observations=(0.5,)),
            self._snapshot(observations=(1.5, 2.5)),
        ])
        histogram = merged["histograms"]["h"]
        assert histogram["count"] == 3
        assert histogram["min"] == 0.5
        assert histogram["max"] == 2.5

    def test_mismatched_histogram_edges_refuse_to_merge(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0.0, 5.0)).observe(1.0)
        with pytest.raises(TelemetryError):
            merge_snapshots([self._snapshot(observations=(0.5,)),
                             registry.as_dict()])

    def test_interleave_orders_by_sim_time_then_stream(self):
        stream_a = [{"sim_s": 1.0, "tag": "a1"},
                    {"sim_s": 3.0, "tag": "a2"}]
        stream_b = [{"sim_s": 1.0, "tag": "b1"},
                    {"sim_s": 2.0, "tag": "b2"}]
        tags = [event["tag"]
                for event in interleave_streams([stream_a, stream_b])]
        assert tags == ["a1", "b1", "b2", "a2"]


def _kill_seed_99(config, capture):
    if config.seed == 99:
        os._exit(13)
    return _REAL_PAYLOAD(config, capture)


def _hang_seed_99(config, capture):
    if config.seed == 99:
        time.sleep(60)
    return _REAL_PAYLOAD(config, capture)


_REAL_PAYLOAD = batch._session_payload


class TestFailureIsolation:
    def _poisoned(self, n=4, bad_index=2, duration_s=2.0):
        configs = _configs(n=n, duration_s=duration_s)
        bad = configs[bad_index]
        configs[bad_index] = SessionConfig(
            app=bad.app, governor=bad.governor,
            duration_s=bad.duration_s, seed=99)
        return configs

    def test_worker_death_is_isolated_to_its_config(self, monkeypatch):
        monkeypatch.setattr(batch, "_session_payload", _kill_seed_99)
        results = run_batch(self._poisoned(), workers=2,
                            mp_context="fork", chunksize=1)
        assert [is_failure_record(r) for r in results] == \
            [False, False, True, False]
        record = results[2]
        assert record["error_type"] == "WorkerCrashError"
        assert record["config_index"] == 2
        summary = batch_failure_summary(results)
        assert summary["counters"]["batch.worker_crashes"] == 1
        assert summary["succeeded"] == 3

    def test_worker_death_raises_in_strict_mode(self, monkeypatch):
        from repro.errors import WorkerCrashError
        monkeypatch.setattr(batch, "_session_payload", _kill_seed_99)
        with pytest.raises(WorkerCrashError):
            run_batch(self._poisoned(), workers=2, mp_context="fork",
                      chunksize=1, on_error="raise")

    def test_timeout_records_only_the_slow_config(self, monkeypatch):
        monkeypatch.setattr(batch, "_session_payload", _hang_seed_99)
        results = run_batch(self._poisoned(), workers=2,
                            mp_context="fork", timeout_s=1.0)
        assert [is_failure_record(r) for r in results] == \
            [False, False, True, False]
        record = results[2]
        assert record["error_type"] == "TimeoutError"
        assert "1 s" in record["error_message"]
        summary = batch_failure_summary(results)
        assert summary["counters"]["batch.timeouts"] == 1

    def test_timeout_raises_in_strict_mode(self, monkeypatch):
        monkeypatch.setattr(batch, "_session_payload", _hang_seed_99)
        with pytest.raises(TimeoutError):
            run_batch(self._poisoned(), workers=2, mp_context="fork",
                      timeout_s=1.0, on_error="raise")

    def test_session_errors_stay_failure_records_in_workers(self):
        configs = _configs(n=3)
        configs[1] = SessionConfig(app="NoSuchApp", duration_s=2.0)
        results = run_batch(configs, workers=2, mp_context="fork",
                            chunksize=1)
        assert [is_failure_record(r) for r in results] == \
            [False, True, False]
        assert results[1]["error_type"] == "WorkloadError"


class TestValidationAndProgress:
    def test_conflicting_worker_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=2), processes=2, workers=3)

    def test_legacy_processes_alias_still_works(self):
        results = run_batch(_configs(n=2, duration_s=2.0), 1)
        assert len(results) == 2

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=2), workers=1, chunksize=0)

    def test_timeout_requires_per_session_dispatch(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=2), workers=2, timeout_s=1.0,
                      chunksize=2)

    def test_unknown_mp_context_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=2), workers=2, mp_context="thread")

    def test_progress_reports_in_input_order(self):
        seen = []
        configs = _configs(n=4, duration_s=2.0)
        run_batch(configs, workers=2, mp_context="fork", chunksize=1,
                  progress=lambda done, total, entry:
                  seen.append((done, total, entry["seed"])))
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == 4 for s in seen)
        assert [s[2] for s in seen] == [0, 1, 2, 3]
