"""Tests for the session runner (end-to-end wiring)."""

import pytest

from repro.apps.wallpaper import nexus_revamped
from repro.core.content_rate import MeterConfig
from repro.errors import ConfigurationError
from repro.sim.session import (
    GOVERNOR_CHOICES,
    SessionConfig,
    run_session,
)

SHORT = 8.0


def session(app="Facebook", governor="fixed", duration=SHORT, seed=1,
            **kwargs):
    return run_session(SessionConfig(app=app, governor=governor,
                                     duration_s=duration, seed=seed,
                                     **kwargs))


class TestSessionConfig:
    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(app="Facebook", governor="psychic")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(app="Facebook", duration_s=0.0)

    def test_profile_resolution_by_name(self):
        cfg = SessionConfig(app="Facebook")
        assert cfg.resolve_profile().name == "Facebook"

    def test_profile_resolution_wallpaper(self):
        cfg = SessionConfig(app=nexus_revamped())
        assert cfg.resolve_profile().name == "Nexus Revamped"

    def test_monkey_derived_from_profile(self):
        cfg = SessionConfig(app="Facebook", duration_s=30.0)
        monkey = cfg.resolve_monkey()
        assert monkey.duration_s == 30.0
        assert monkey.events_per_s == \
            cfg.resolve_profile().touch_events_per_s


class TestFixedBaseline:
    def test_panel_stays_at_60(self):
        result = session(governor="fixed")
        times, values = result.panel.rate_history.transitions
        assert (values == 60.0).all()
        assert result.mean_refresh_rate_hz == 60.0

    def test_free_running_game_fills_every_vsync(self):
        result = session(app="Jelly Splash", governor="fixed")
        assert result.mean_frame_rate_fps == pytest.approx(60.0, abs=1.0)

    def test_metering_inactive_flag(self):
        result = session(governor="fixed")
        assert not result.metering_active


class TestGovernedSessions:
    @pytest.mark.parametrize("governor", [g for g in GOVERNOR_CHOICES
                                          if g != "fixed"])
    def test_all_governors_run(self, governor):
        result = session(governor=governor, duration=6.0)
        assert result.duration_s == 6.0
        assert result.metering_active

    def test_section_reduces_mean_refresh(self):
        fixed = session(app="Facebook", governor="fixed")
        governed = session(app="Facebook", governor="section")
        assert governed.mean_refresh_rate_hz < \
            fixed.mean_refresh_rate_hz - 10.0

    def test_section_reduces_power(self):
        fixed = session(app="Jelly Splash", governor="fixed", duration=15.0)
        governed = session(app="Jelly Splash", governor="section",
                           duration=15.0)
        assert governed.power_report().mean_power_mw < \
            fixed.power_report().mean_power_mw

    def test_boost_costs_power_vs_plain_section(self):
        plain = session(app="Facebook", governor="section", duration=30.0,
                        seed=3)
        boosted = session(app="Facebook", governor="section+boost",
                          duration=30.0, seed=3)
        assert boosted.power_report().mean_power_mw >= \
            plain.power_report().mean_power_mw - 1.0

    def test_governor_names(self):
        assert session(governor="section").governor_name == \
            "section-based"
        assert "touch-boost" in \
            session(governor="section+boost").governor_name


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = session(app="Jelly Splash", governor="section+boost", seed=7)
        b = session(app="Jelly Splash", governor="section+boost", seed=7)
        assert a.power_report().energy_mj == \
            b.power_report().energy_mj
        assert list(a.application.content_changes.times) == \
            list(b.application.content_changes.times)
        assert a.touch_script.times == b.touch_script.times

    def test_content_stream_invariant_across_governors(self):
        """The controlled-comparison property: the same seed produces
        the same ground-truth content instants and touch script no
        matter which governor runs."""
        a = session(app="Facebook", governor="fixed", seed=5)
        b = session(app="Facebook", governor="section", seed=5)
        assert list(a.application.content_changes.times) == \
            list(b.application.content_changes.times)
        assert a.touch_script.times == b.touch_script.times

    def test_different_seeds_differ(self):
        a = session(app="Facebook", governor="fixed", seed=1)
        b = session(app="Facebook", governor="fixed", seed=2)
        assert list(a.application.content_changes.times) != \
            list(b.application.content_changes.times)


class TestResultDerivations:
    def test_rates_are_consistent(self):
        result = session(app="Jelly Splash", governor="fixed")
        assert result.mean_frame_rate_fps == pytest.approx(
            result.mean_content_rate_fps +
            result.mean_redundant_rate_fps)

    def test_quality_report_runs(self):
        result = session(app="Facebook", governor="section")
        report = result.quality_report()
        assert 0.0 <= report.display_quality <= 1.0

    def test_power_trace_covers_session(self):
        result = session(app="Facebook", governor="fixed")
        centers, power = result.power_trace(bin_width_s=1.0)
        assert len(centers) == int(SHORT)
        assert (power > 0).all()

    def test_meter_vs_ground_truth_at_fixed_60(self):
        # At 60 Hz with large content changes, the 9K-grid meter and
        # the compositor's full comparison must agree closely.
        result = session(app="Facebook", governor="fixed", duration=20.0)
        measured = result.meter.total_meaningful
        actual = len(result.meaningful_compositions)
        assert abs(measured - actual) <= max(2, 0.02 * actual)


class TestVsyncThrottle:
    def test_content_rate_never_exceeds_refresh(self):
        """V-Sync clips the measurable content rate at the refresh rate
        (Section 2.1) — checked bin by bin."""
        result = session(app="Jelly Splash", governor="section",
                         duration=20.0, seed=2)
        centers, content = result.meter.meaningful_frames.binned_rate(
            0.0, 20.0, 1.0)
        t_trans, v_trans = result.panel.rate_history.transitions
        for center, rate in zip(centers, content):
            lo, hi = center - 0.5, center + 0.5
            # Max refresh in effect at any instant of the bin: the value
            # entering the bin plus any transitions inside it.
            entering = result.panel.rate_history.value_at(lo)
            inside = v_trans[(t_trans > lo) & (t_trans <= hi)]
            max_refresh = max([entering] + list(inside))
            # One frame of slack for bin-edge effects.
            assert rate <= max_refresh + 1.0 + 1e-9


class TestResolutionScaling:
    def test_native_resolution_session(self):
        result = session(app=nexus_revamped(), governor="fixed",
                         duration=2.0, resolution_divisor=1,
                         meter=MeterConfig(sample_count=9216))
        assert result.meter.grid.buffer_shape == (1280, 720)

    def test_scaled_session_grid_adapts(self):
        result = session(governor="fixed", duration=2.0,
                         resolution_divisor=8)
        assert result.meter.grid.buffer_shape == (160, 90)
        assert result.meter.grid.sample_count <= 160 * 90
