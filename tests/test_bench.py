"""Tests for the `repro bench` harness and its regression gate."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    compare_bench,
    format_bench,
    load_bench,
    run_bench,
    write_bench,
)
from repro.errors import ConfigurationError

METRICS = ("meter_compare_9k_s", "spec_roundtrip_s",
           "native_session_s", "trace_replay_s",
           "batch32_workers1_s", "batch32_workersN_s",
           "batch32_speedup_x", "expose_render_s",
           "sweep_warm_vs_cold_x",
           "vector_batch32_s", "vector_vs_scalar_x",
           "tournament_small_s")


def _document(fast=False, **values):
    metrics = {}
    for name in METRICS:
        metrics[name] = {
            "value": values.get(name, 1.0),
            "unit": "x" if name.endswith("_x") else "s",
            "higher_is_better": name.endswith("_x"),
        }
    return {"schema": BENCH_SCHEMA, "rev": "test", "python": "3.11",
            "cpu_count": 4, "workers": 4, "fast": fast,
            "sessions": 32, "metrics": metrics}


class TestRunBench:
    @pytest.fixture(scope="class")
    def bench(self):
        return run_bench(workers=1, fast=True)

    def test_document_schema(self, bench):
        assert bench["schema"] == BENCH_SCHEMA
        assert bench["fast"] is True
        assert set(bench["metrics"]) == set(METRICS)
        for metric in bench["metrics"].values():
            assert metric["value"] > 0
            assert isinstance(metric["higher_is_better"], bool)

    def test_document_round_trips_through_json(self, bench, tmp_path):
        path = write_bench(bench, tmp_path / "bench.json")
        assert load_bench(path) == json.loads(
            json.dumps(bench))

    def test_format_is_human_table(self, bench):
        text = format_bench(bench)
        assert "repro bench" in text
        for name in METRICS:
            assert name in text

    def test_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError):
            run_bench(workers=0)


class TestCompareBench:
    def test_identical_documents_pass(self):
        assert compare_bench(_document(), _document()) == []

    def test_small_drift_passes(self):
        current = _document(native_session_s=1.15,
                            batch32_speedup_x=0.85)
        assert compare_bench(current, _document(), threshold=0.2) == []

    def test_lower_is_better_regression_fails(self):
        current = _document(native_session_s=1.3)
        regressions = compare_bench(current, _document(),
                                    threshold=0.2)
        assert [r["metric"] for r in regressions] == \
            ["native_session_s"]
        assert "rose to" in regressions[0]["message"]

    def test_higher_is_better_regression_fails(self):
        current = _document(batch32_speedup_x=0.7)
        regressions = compare_bench(current, _document(),
                                    threshold=0.2)
        assert [r["metric"] for r in regressions] == \
            ["batch32_speedup_x"]
        assert "fell to" in regressions[0]["message"]

    def test_missing_metric_is_a_regression(self):
        current = _document()
        del current["metrics"]["meter_compare_9k_s"]
        regressions = compare_bench(current, _document())
        assert [r["metric"] for r in regressions] == \
            ["meter_compare_9k_s"]

    def test_extra_current_metric_is_fine(self):
        current = _document()
        current["metrics"]["new_metric_s"] = {
            "value": 1.0, "unit": "s", "higher_is_better": False}
        assert compare_bench(current, _document()) == []

    def test_fast_vs_full_refused(self):
        with pytest.raises(ConfigurationError):
            compare_bench(_document(fast=True), _document())

    def test_unknown_schema_refused(self):
        broken = _document()
        broken["schema"] = "repro-bench/999"
        with pytest.raises(ConfigurationError):
            compare_bench(broken, _document())

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_bench(_document(), _document(), threshold=0.0)


class TestCli:
    def test_bench_check_gate_exit_codes(self, tmp_path, capsys):
        from repro.cli import main
        baseline = tmp_path / "baseline.json"
        write_bench(run_bench(workers=1, fast=True), baseline)
        assert main(["bench", "--fast", "--workers", "1",
                     "--threshold", "10.0",
                     "--check", str(baseline)]) == 0
        assert "bench gate: OK" in capsys.readouterr().err

        strict = load_bench(baseline)
        for metric in strict["metrics"].values():
            metric["value"] = (metric["value"] * 1e6
                               if metric["higher_is_better"]
                               else metric["value"] / 1e6)
        write_bench(strict, baseline)
        assert main(["bench", "--fast", "--workers", "1",
                     "--check", str(baseline)]) == 1
        assert "bench gate: FAIL" in capsys.readouterr().err


class TestCoreAwareGate:
    """The parallel metrics only gate when the cores back them up."""

    def _docs(self, base_cores, cur_cores, speedup=0.25):
        baseline = _document(batch32_speedup_x=4.0,
                             batch32_workersN_s=1.0)
        baseline["cpu_count"] = base_cores
        current = _document(batch32_speedup_x=speedup,
                            batch32_workersN_s=100.0)
        current["cpu_count"] = cur_cores
        return current, baseline

    def test_single_core_baseline_gates_nothing_parallel(self):
        from repro.bench import gate_skips
        current, baseline = self._docs(base_cores=1, cur_cores=8)
        assert compare_bench(current, baseline) == []
        skips = {s["metric"] for s in gate_skips(current, baseline)}
        assert skips == {"batch32_workersN_s", "batch32_speedup_x"}

    def test_core_downgrade_skips_parallel_metrics(self):
        current, baseline = self._docs(base_cores=8, cur_cores=1)
        assert compare_bench(current, baseline) == []

    def test_enough_cores_still_gate(self):
        current, baseline = self._docs(base_cores=4, cur_cores=4)
        regressed = {r["metric"] for r in
                     compare_bench(current, baseline)}
        assert "batch32_speedup_x" in regressed
        assert "batch32_workersN_s" in regressed

    def test_serial_metrics_always_gate(self):
        current, baseline = self._docs(base_cores=1, cur_cores=1)
        current["metrics"]["native_session_s"]["value"] = 1e6
        regressed = {r["metric"] for r in
                     compare_bench(current, baseline)}
        assert regressed == {"native_session_s"}

    def test_report_annotates_skipped_metrics(self):
        """A skipped metric must not print a misleading delta."""
        current, baseline = self._docs(base_cores=1, cur_cores=8)
        text = format_bench(current, baseline)
        for line in text.splitlines():
            if "batch32_speedup_x" in line or \
                    "batch32_workersN_s" in line:
                assert "SKIPPED (core-aware)" in line
                assert "%" not in line
            elif "native_session_s" in line:
                assert "SKIPPED" not in line
                assert "%" in line

    def test_report_unskipped_has_no_annotation(self):
        current, baseline = self._docs(base_cores=4, cur_cores=4)
        assert "SKIPPED" not in format_bench(current, baseline)


class TestPerMetricThresholds:
    def test_override_loosens_one_metric_only(self):
        baseline = _document()
        current = _document(native_session_s=1.5,
                            trace_replay_s=1.5)
        loose = compare_bench(
            current, baseline,
            metric_thresholds={"native_session_s": 0.6,
                               "trace_replay_s": 0.6})
        assert loose == []
        strict = {r["metric"] for r in compare_bench(current, baseline)}
        assert strict == {"native_session_s", "trace_replay_s"}

    def test_override_can_tighten(self):
        baseline = _document()
        current = _document(native_session_s=1.1)
        regressed = compare_bench(
            current, baseline,
            metric_thresholds={"native_session_s": 0.05})
        assert [r["metric"] for r in regressed] == ["native_session_s"]

    def test_bad_override_rejected(self):
        with pytest.raises(ConfigurationError):
            compare_bench(_document(), _document(),
                          metric_thresholds={"native_session_s": 0.0})

    def test_cli_metric_threshold_flag(self, tmp_path, capsys):
        from repro.cli import main
        baseline_path = tmp_path / "baseline.json"
        document = run_bench(workers=1, fast=True)
        write_bench(document, baseline_path)
        # Shrink one serial metric in the baseline so it regresses by
        # ~1000x, far beyond any timing noise; the default threshold is
        # kept huge so every other metric passes regardless of load.
        loaded = load_bench(baseline_path)
        loaded["metrics"]["meter_compare_9k_s"]["value"] /= 1000.0
        write_bench(loaded, baseline_path)
        assert main(["bench", "--fast", "--workers", "1",
                     "--threshold", "50.0",
                     "--check", str(baseline_path)]) == 1
        assert "bench gate: FAIL" in capsys.readouterr().err
        assert main(["bench", "--fast", "--workers", "1",
                     "--threshold", "50.0",
                     "--check", str(baseline_path),
                     "--metric-threshold",
                     "meter_compare_9k_s=10000.0"]) == 0
        assert "bench gate: OK" in capsys.readouterr().err

    def test_cli_rejects_malformed_override(self, tmp_path):
        from repro.cli import main
        baseline_path = tmp_path / "baseline.json"
        write_bench(run_bench(workers=1, fast=True), baseline_path)
        with pytest.raises(SystemExit):
            main(["bench", "--fast", "--workers", "1",
                  "--check", str(baseline_path),
                  "--metric-threshold", "nonsense"])
