"""Tests for the display hardware model (spec, panel, presets)."""

import pytest

from repro.display.panel import DisplayPanel
from repro.display.presets import (
    FIXED_60_PANEL,
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    panel_preset,
    panel_preset_names,
)
from repro.display.spec import PanelSpec
from repro.errors import ConfigurationError, DisplayError
from repro.sim.engine import Simulator


class TestPanelSpec:
    def test_rates_sorted_ascending(self):
        spec = PanelSpec("x", 10, 10, refresh_rates_hz=(60.0, 20.0, 40.0))
        assert spec.refresh_rates_hz == (20.0, 40.0, 60.0)

    def test_min_max(self):
        assert GALAXY_S3_PANEL.min_refresh_hz == 20.0
        assert GALAXY_S3_PANEL.max_refresh_hz == 60.0

    def test_galaxy_s3_is_the_paper_device(self):
        assert GALAXY_S3_PANEL.refresh_rates_hz == (20.0, 24.0, 30.0,
                                                    40.0, 60.0)
        assert GALAXY_S3_PANEL.pixel_count == 921_600

    def test_supports_and_validate(self):
        assert GALAXY_S3_PANEL.supports(24.0)
        assert not GALAXY_S3_PANEL.supports(25.0)
        assert GALAXY_S3_PANEL.validate_rate(24.0) == 24.0
        with pytest.raises(ConfigurationError):
            GALAXY_S3_PANEL.validate_rate(25.0)

    def test_duplicate_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            PanelSpec("x", 10, 10, refresh_rates_hz=(60.0, 60.0))

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            PanelSpec("x", 10, 10, refresh_rates_hz=())

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PanelSpec("x", 10, 10, refresh_rates_hz=(0.0, 60.0))

    def test_scaled(self):
        scaled = GALAXY_S3_PANEL.scaled(8)
        assert scaled.width == 90
        assert scaled.height == 160
        assert scaled.refresh_rates_hz == GALAXY_S3_PANEL.refresh_rates_hz


class TestPresets:
    def test_lookup(self):
        assert panel_preset("galaxy-s3") is GALAXY_S3_PANEL
        assert panel_preset("fixed-60") is FIXED_60_PANEL
        assert panel_preset("ltpo-120") is LTPO_120_PANEL

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            panel_preset("nokia-3310")

    def test_names_cover_registry(self):
        names = panel_preset_names()
        assert "galaxy-s3" in names
        for name in names:
            panel_preset(name)


class TestDisplayPanel:
    def _panel(self, initial=None):
        sim = Simulator()
        panel = DisplayPanel(sim, GALAXY_S3_PANEL, initial_rate_hz=initial)
        return sim, panel

    def test_defaults_to_max_rate(self):
        _, panel = self._panel()
        assert panel.refresh_rate_hz == 60.0

    def test_vsync_cadence_at_60hz(self):
        sim, panel = self._panel()
        ticks = []
        panel.add_vsync_listener(ticks.append)
        panel.start()
        sim.run_until(1.0 + 1e-6)
        assert len(ticks) == 60
        assert ticks[0] == pytest.approx(1.0 / 60.0)

    def test_vsync_cadence_at_20hz(self):
        sim, panel = self._panel(initial=20.0)
        panel.start()
        sim.run_until(1.0 + 1e-6)
        assert panel.vsync_count == 20

    def test_unsupported_rate_rejected(self):
        _, panel = self._panel()
        with pytest.raises(ConfigurationError):
            panel.set_refresh_rate(25.0)

    def test_switch_takes_effect_at_frame_boundary(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(0.005)  # before the first vsync
        panel.set_refresh_rate(20.0)
        # Still 60 Hz until the next vsync latches the switch.
        assert panel.refresh_rate_hz == 60.0
        assert panel.target_rate_hz == 20.0
        sim.run_until(1.0 / 60.0 + 1e-6)
        assert panel.refresh_rate_hz == 20.0

    def test_vsync_count_reflects_mixed_rates(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(1.0)
        panel.set_refresh_rate(20.0)
        sim.run_until(2.0)
        # ~60 in the first second, ~20 in the second.
        assert 75 <= panel.vsync_count <= 85

    def test_switch_before_start_is_immediate(self):
        _, panel = self._panel()
        panel.set_refresh_rate(30.0)
        assert panel.refresh_rate_hz == 30.0

    def test_setting_current_rate_is_noop(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(0.5)
        panel.set_refresh_rate(60.0)
        sim.run_until(1.0)
        assert panel.rate_switches == 0

    def test_rate_change_listener(self):
        sim, panel = self._panel()
        seen = []
        panel.add_rate_change_listener(lambda t, r: seen.append((t, r)))
        panel.start()
        sim.run_until(0.1)
        panel.set_refresh_rate(40.0)
        sim.run_until(0.2)
        assert len(seen) == 1
        assert seen[0][1] == 40.0

    def test_rate_history_integrates(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(1.0)
        panel.set_refresh_rate(20.0)
        sim.run_until(2.0)
        mean = panel.rate_history.mean(0.0, sim.now)
        assert 35.0 < mean < 60.0

    def test_stop_halts_vsyncs(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(0.5)
        count = panel.vsync_count
        panel.stop()
        sim.run_until(2.0)
        assert panel.vsync_count == count
        assert not panel.running

    def test_double_start_rejected(self):
        _, panel = self._panel()
        panel.start()
        with pytest.raises(DisplayError):
            panel.start()

    def test_pending_switch_overwrite_last_wins(self):
        sim, panel = self._panel()
        panel.start()
        sim.run_until(0.001)
        panel.set_refresh_rate(20.0)
        panel.set_refresh_rate(40.0)
        sim.run_until(0.05)
        assert panel.refresh_rate_hz == 40.0
