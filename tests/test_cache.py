"""Tests for the content-addressed result cache (`repro.cache`).

The contract under test: a cache-served batch is *byte-identical* to
an uncached run (serial and pooled), every invalidation lever (spec
schema rev, code-rev salt, payload kind) actually orphans entries, a
damaged entry is recomputed — never served, never a crash — and
concurrent writers racing on one key leave exactly one untorn entry.
"""

import json
import threading

import pytest

from repro.cache import (
    CODE_REV_SALT,
    INDEX_SCHEMA,
    ResultCache,
    cache_key,
    hit_rate,
    read_index,
)
from repro.errors import ConfigurationError
from repro.pipeline.spec import SessionSpec
from repro.sim.batch import run_batch
from repro.sim.session import SessionConfig
from repro.telemetry import TelemetryConfig

APPS = ("Facebook", "Auction")


def _configs(n=4, duration_s=2.0):
    return [SessionConfig(app=APPS[i % len(APPS)],
                          governor="section+boost",
                          duration_s=duration_s, seed=i)
            for i in range(n)]


def _bytes(results):
    return json.dumps(results, sort_keys=True)


def _spec(**overrides):
    fields = dict(app="Facebook", duration_s=2.0, seed=3)
    fields.update(overrides)
    return SessionSpec(**fields)


class TestCacheKey:
    def test_stable_across_instances(self):
        assert cache_key(_spec()) == cache_key(_spec())

    def test_spec_fields_change_the_key(self):
        base = cache_key(_spec())
        assert cache_key(_spec(seed=4)) != base
        assert cache_key(_spec(governor="fixed")) != base
        assert cache_key(_spec(duration_s=2.5)) != base

    def test_every_component_changes_the_key(self):
        base = cache_key(_spec())
        assert cache_key(_spec(), capture=True) != base
        assert cache_key(_spec(), schema_rev="repro-session/2") != base
        assert cache_key(_spec(), code_salt="other") != base

    def test_uncacheable_specs_refused(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key_for_spec(_spec(app="trace:frames.rptrace")) \
            is None
        sink = SessionConfig(
            app="Facebook", duration_s=2.0,
            telemetry=TelemetryConfig(jsonl_path="events.jsonl"))
        assert cache.key_for(sink) is None
        assert cache.stats_dict()["uncacheable"] == 2

    def test_empty_rev_or_salt_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, schema_rev="")
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path, code_salt="")


class TestBatchIntegration:
    def test_warm_run_is_all_hits_and_byte_identical(self, tmp_path):
        configs = _configs()
        cache = ResultCache(tmp_path)
        uncached = run_batch(configs, workers=1)
        cold = run_batch(configs, workers=1, cache=cache)
        warm = run_batch(configs, workers=1, cache=cache)
        assert _bytes(cold) == _bytes(uncached)
        assert _bytes(warm) == _bytes(uncached)
        stats = cache.stats_dict()
        assert stats["misses"] == len(configs)
        assert stats["stores"] == len(configs)
        assert stats["hits"] == len(configs)

    def test_pooled_warm_run_matches_serial(self, tmp_path):
        configs = _configs()
        cache = ResultCache(tmp_path)
        uncached = run_batch(configs, workers=1)
        run_batch(configs[:2], workers=1, cache=cache)  # partial warm
        mixed = run_batch(configs, workers=2, cache=cache,
                          mp_context="fork")
        assert _bytes(mixed) == _bytes(uncached)
        warm = run_batch(configs, workers=2, cache=cache,
                         mp_context="fork")
        assert _bytes(warm) == _bytes(uncached)
        assert cache.stats_dict()["hits"] == 2 + len(configs)

    def test_progress_fires_once_per_config(self, tmp_path):
        configs = _configs()
        cache = ResultCache(tmp_path)
        run_batch(configs[2:], workers=1, cache=cache)
        seen = []
        run_batch(configs, workers=1, cache=cache,
                  progress=lambda done, total, entry:
                  seen.append((done, total)))
        assert seen == [(i + 1, len(configs))
                        for i in range(len(configs))]

    def test_failure_records_are_not_cached(self, tmp_path,
                                            monkeypatch):
        import repro.sim.batch as batch
        cache = ResultCache(tmp_path)
        configs = _configs(n=1)

        def boom(config):
            raise RuntimeError("injected session failure")

        monkeypatch.setattr(batch, "run_session", boom)
        results = run_batch(configs, workers=1, cache=cache,
                            on_error="record")
        assert results[0]["batch_failed"] is True
        assert cache.entry_count() == 0
        # The failed config still misses (never a hit) next time, and
        # a healthy run recomputes and stores normally.
        monkeypatch.undo()
        again = run_batch(configs, workers=1, cache=cache,
                          on_error="record")
        assert again[0]["app"] == configs[0].app
        stats = cache.stats_dict()
        assert stats["hits"] == 0
        assert stats["stores"] == 1


class TestInvalidation:
    def _prime(self, tmp_path, **kwargs):
        cache = ResultCache(tmp_path, **kwargs)
        configs = _configs(n=2)
        run_batch(configs, workers=1, cache=cache)
        return configs

    def test_schema_rev_bump_invalidates(self, tmp_path):
        configs = self._prime(tmp_path)
        bumped = ResultCache(tmp_path, schema_rev="repro-session/2")
        run_batch(configs, workers=1, cache=bumped)
        stats = bumped.stats_dict()
        assert stats["hits"] == 0
        assert stats["misses"] == len(configs)

    def test_code_salt_change_invalidates(self, tmp_path):
        configs = self._prime(tmp_path)
        salted = ResultCache(tmp_path, code_salt=CODE_REV_SALT + ".x")
        run_batch(configs, workers=1, cache=salted)
        assert salted.stats_dict()["hits"] == 0

    def _one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _configs(n=1)[0]
        run_batch([config], workers=1, cache=cache)
        paths = list(cache.objects_dir.glob("*/*.json"))
        assert len(paths) == 1
        return cache, config, paths[0]

    def test_truncated_entry_recomputes(self, tmp_path):
        cache, config, path = self._one_entry(tmp_path)
        path.write_text(path.read_text()[: 40])
        results = run_batch([config], workers=1, cache=cache)
        assert results[0]["app"] == config.app
        stats = cache.stats_dict()
        assert stats["corrupt_entries"] == 1
        assert stats["hits"] == 0
        # The bad entry was deleted and replaced by the recompute.
        assert cache.get(cache.key_for(config)) is not None

    def test_garbage_entry_recomputes(self, tmp_path):
        cache, config, path = self._one_entry(tmp_path)
        path.write_text("{\"schema\": \"not-a-cache-entry\"}\n")
        results = run_batch([config], workers=1, cache=cache)
        assert results[0]["app"] == config.app
        assert cache.stats_dict()["corrupt_entries"] == 1

    def test_renamed_entry_key_mismatch_recomputes(self, tmp_path):
        cache, config, path = self._one_entry(tmp_path)
        other = cache.key_for(_configs(n=2)[1])
        target = cache.entry_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert cache.get(other) is None
        assert cache.stats_dict()["corrupt_entries"] == 1


class TestWriteOnce:
    def test_first_writer_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.put(key, {"entry": {"winner": 1}, "events": []})
        assert not cache.put(key, {"entry": {"winner": 2},
                                   "events": []})
        assert cache.get(key)["entry"] == {"winner": 1}
        assert cache.stats_dict()["store_races"] == 1

    def test_concurrent_writers_leave_one_untorn_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "1" * 62
        payload = {"entry": {"metric": [float(i) for i in range(200)]},
                   "events": []}
        barrier = threading.Barrier(8)
        outcomes = []

        def race():
            barrier.wait()
            local = ResultCache(tmp_path)
            outcomes.append(local.put(key, payload))

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count(True) == 1
        assert cache.entry_count() == 1
        # The surviving entry is complete and parses cleanly.
        assert cache.get(key) == payload

    def test_inf_round_trips_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "2" * 62
        payload = {"entry": {"metering_error": float("inf")},
                   "events": []}
        cache.put(key, payload)
        assert cache.get(key)["entry"]["metering_error"] == \
            float("inf")


class TestIndexAndEviction:
    def test_index_accumulates_across_instances(self, tmp_path):
        configs = _configs(n=2)
        first = ResultCache(tmp_path)
        run_batch(configs, workers=1, cache=first)
        first.write_index()
        first.write_index()  # repeat never double-counts
        second = ResultCache(tmp_path)
        run_batch(configs, workers=1, cache=second)
        second.write_index()
        index = read_index(tmp_path)
        assert index["schema"] == INDEX_SCHEMA
        assert index["entries"] == 2
        assert index["totals"]["stores"] == 2
        assert index["totals"]["misses"] == 2
        assert index["totals"]["hits"] == 2

    def test_damaged_index_resets_not_crashes(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.index_path.write_text("not json")
        assert read_index(tmp_path) is None
        cache.write_index()
        assert read_index(tmp_path)["totals"]["hits"] == 0

    def test_prune_evicts_oldest_beyond_cap(self, tmp_path):
        import os
        cache = ResultCache(tmp_path)
        keys = [f"{i:02x}" + f"{i:x}" * 62 for i in range(4)]
        for age, key in enumerate(keys):
            cache.put(key, {"entry": {"n": age}, "events": []})
            path = cache.entry_path(key)
            os.utime(path, (1000.0 + age, 1000.0 + age))
        assert cache.prune(2) == 2
        assert cache.entry_count() == 2
        assert cache.get(keys[0]) is None  # oldest gone
        assert cache.get(keys[3]) is not None  # newest kept
        assert cache.stats_dict()["evictions"] == 2
        with pytest.raises(ConfigurationError):
            cache.prune(-1)

    def test_hit_rate_helper(self):
        assert hit_rate({"hits": 3, "misses": 1}) == (3, 4, 0.75)
        assert hit_rate({}) == (0, 0, 0.0)


class TestServiceIntegration:
    def _serve(self, state_dir, cache_dir, spec):
        import asyncio

        from repro.service import (
            ServiceConfig,
            SessionService,
            submit_job,
        )
        from repro.service.jobs import JobRequest
        submit_job(state_dir, JobRequest(job_id="job-1", spec=spec))
        service = SessionService(ServiceConfig(
            state_dir=str(state_dir), workers=1, shards=1,
            until_idle=True, fsync_journal=False,
            cache_dir=str(cache_dir)))
        summary = asyncio.run(service.serve())
        assert summary["jobs"]["done"] == 1
        result = json.loads(
            (state_dir / "results" / "job-1.json").read_text())
        return service, result

    def test_cached_job_result_is_identical(self, tmp_path):
        spec = SessionSpec.from_config(
            _configs(n=1)[0]).to_json_dict()
        cache_dir = tmp_path / "cache"
        first, result_cold = self._serve(tmp_path / "a", cache_dir,
                                         spec)
        assert first.cache.stats_dict()["stores"] == 1
        second, result_warm = self._serve(tmp_path / "b", cache_dir,
                                          spec)
        stats = second.cache.stats_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert result_warm == result_cold
        # Cache counters ride the service scrape surface.
        assert "cache.hits" in second.scrape_snapshot()["counters"]
        assert read_index(cache_dir)["totals"]["hits"] == 1
