"""Tests for display-quality analysis."""

import pytest

from repro.core.quality import (
    QualityReport,
    compute_quality,
    quality_vs_baseline,
)
from repro.errors import ConfigurationError
from repro.sim.tracing import EventLog


def log_of(times, name="log"):
    log = EventLog(name)
    for t in times:
        log.append(t)
    return log


class TestQualityReport:
    def test_perfect_quality(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=5.0,
                          displayed_content_fps=5.0,
                          measured_content_fps=5.0)
        assert r.display_quality == 1.0
        assert r.dropped_fps == 0.0
        assert r.metering_error == 0.0

    def test_dropped_frames(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=10.0,
                          displayed_content_fps=7.0,
                          measured_content_fps=7.0)
        assert r.display_quality == pytest.approx(0.7)
        assert r.dropped_fps == pytest.approx(3.0)

    def test_no_content_is_perfect(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=0.0,
                          displayed_content_fps=0.0,
                          measured_content_fps=0.0)
        assert r.display_quality == 1.0
        assert r.measured_quality == 1.0

    def test_quality_clamped_at_one(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=5.0,
                          displayed_content_fps=6.0,
                          measured_content_fps=6.0)
        assert r.display_quality == 1.0

    def test_metering_error(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=10.0,
                          displayed_content_fps=10.0,
                          measured_content_fps=9.0)
        assert r.metering_error == pytest.approx(0.1)

    def test_metering_error_zero_displayed(self):
        r = QualityReport(duration_s=10.0, actual_content_fps=1.0,
                          displayed_content_fps=0.0,
                          measured_content_fps=1.0)
        assert r.metering_error == float("inf")


class TestComputeQuality:
    def test_rates_from_logs(self):
        actual = log_of([1.0, 2.0, 3.0, 4.0])
        displayed = log_of([1.01, 2.01, 3.01])
        measured = log_of([1.01, 2.01, 3.01])
        r = compute_quality(actual, displayed, measured, duration_s=10.0)
        assert r.actual_content_fps == pytest.approx(0.4)
        assert r.displayed_content_fps == pytest.approx(0.3)
        assert r.display_quality == pytest.approx(0.75)

    def test_bootstrap_frame_excluded(self):
        # A displayed frame before any content exists is the cold
        # framebuffer's first write, not app content.
        actual = log_of([5.0])
        displayed = log_of([0.1, 5.01])
        measured = log_of([0.1, 5.01])
        r = compute_quality(actual, displayed, measured, duration_s=10.0)
        assert r.displayed_content_fps == pytest.approx(0.1)
        assert r.display_quality == 1.0

    def test_zero_content_session(self):
        actual = log_of([])
        displayed = log_of([0.1])
        measured = log_of([0.1])
        r = compute_quality(actual, displayed, measured, duration_s=10.0)
        assert r.displayed_content_fps == 0.0
        assert r.display_quality == 1.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            compute_quality(log_of([]), log_of([]), log_of([]),
                            duration_s=0.0)


class TestQualityVsBaseline:
    def test_equal_rates_is_one(self):
        assert quality_vs_baseline(10.0, 10.0) == 1.0

    def test_ratio(self):
        assert quality_vs_baseline(7.4, 10.0) == pytest.approx(0.74)

    def test_clamped_at_one(self):
        assert quality_vs_baseline(11.0, 10.0) == 1.0

    def test_zero_baseline_is_perfect(self):
        assert quality_vs_baseline(0.0, 0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            quality_vs_baseline(-1.0, 10.0)
