"""Repository hygiene: everything compiles, examples are wired right.

Cheap whole-repo guards: every Python file (library, tests,
benchmarks, examples) byte-compiles; every example is an executable
script with a ``main``; the public API surface in ``__all__`` actually
resolves; the benchmark files referenced by the experiment registry
exist on disk.
"""

import pathlib
import py_compile

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ALL_PY = sorted(
    p for d in ("src", "tests", "benchmarks", "examples")
    for p in (REPO_ROOT / d).rglob("*.py"))

EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


class TestCompilation:
    @pytest.mark.parametrize("path", ALL_PY,
                             ids=[str(p.relative_to(REPO_ROOT))
                                  for p in ALL_PY])
    def test_file_compiles(self, path, tmp_path):
        py_compile.compile(str(path),
                           cfile=str(tmp_path / "out.pyc"),
                           doraise=True)


class TestExamples:
    def test_at_least_six_examples(self):
        assert len(EXAMPLES) >= 6

    @pytest.mark.parametrize("path", EXAMPLES,
                             ids=[p.name for p in EXAMPLES])
    def test_example_structure(self, path):
        source = path.read_text()
        assert source.startswith("#!/usr/bin/env python3"), path.name
        assert "def main()" in source, path.name
        assert '__name__ == "__main__"' in source, path.name
        assert '"""' in source.split("\n", 2)[1], \
            f"{path.name} needs a module docstring"


class TestPublicApi:
    def test_all_names_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        import importlib
        for package in ("repro.core", "repro.graphics", "repro.display",
                        "repro.power", "repro.apps", "repro.inputs",
                        "repro.baselines", "repro.sim", "repro.analysis",
                        "repro.experiments"):
            module = importlib.import_module(package)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{package}.{name}"

    def test_version_string(self):
        import repro
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)


class TestRegistryFilesExist:
    def test_registry_benchmarks_exist(self):
        from repro.experiments.registry import EXPERIMENTS
        for info in EXPERIMENTS:
            assert (REPO_ROOT / info.benchmark).exists(), info.benchmark

    def test_registry_modules_importable(self):
        import importlib
        from repro.experiments.registry import EXPERIMENTS
        for info in EXPERIMENTS:
            for module in info.modules:
                importlib.import_module(module)


class TestDocumentation:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / name).stat().st_size > 1000, name

    def test_design_covers_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        from repro.experiments.registry import EXPERIMENTS
        for info in EXPERIMENTS:
            assert info.benchmark.split("/")[-1] in design, \
                info.experiment_id

    def test_every_public_module_has_docstring(self):
        import importlib
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            rel = path.relative_to(REPO_ROOT / "src")
            module_name = str(rel.with_suffix("")).replace("/", ".")
            module_name = module_name.replace(".__init__", "")
            module = importlib.import_module(module_name)
            assert module.__doc__, module_name
