"""Tests for analysis: statistics, aggregation, table formatting."""

import pytest

from repro.analysis.aggregate import (
    AppMeasurement,
    summarize_categories,
    summarize_method,
)
from repro.analysis.stats import (
    mean_std,
    percentile_of_apps,
    savings_percent,
)
from repro.analysis.tables import format_table
from repro.apps.profile import AppCategory
from repro.errors import ConfigurationError


class TestMeanStd:
    def test_values(self):
        ms = mean_std([1.0, 2.0, 3.0])
        assert ms.mean == pytest.approx(2.0)
        assert ms.std == pytest.approx(0.8165, rel=1e-3)
        assert ms.n == 3

    def test_single_value(self):
        ms = mean_std([5.0])
        assert ms.mean == 5.0
        assert ms.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_std([])

    def test_str_matches_paper_format(self):
        assert str(mean_std([18.6, 18.6])) == "18.6 (±0.00)"


class TestPercentileOfApps:
    def test_upper_tail(self):
        values = list(range(1, 11))  # 1..10
        # "For 80 % of apps the value is at least X" -> 20th pct.
        at_least = percentile_of_apps(values, 0.8, tail="upper")
        assert at_least == pytest.approx(2.8)

    def test_lower_tail(self):
        values = list(range(1, 11))
        at_most = percentile_of_apps(values, 0.8, tail="lower")
        assert at_most == pytest.approx(8.2)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            percentile_of_apps([1.0], 1.0)

    def test_invalid_tail(self):
        with pytest.raises(ConfigurationError):
            percentile_of_apps([1.0], 0.8, tail="middle")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile_of_apps([], 0.8)


class TestSavingsPercent:
    def test_value(self):
        assert savings_percent(1000.0, 800.0) == pytest.approx(20.0)

    def test_negative_saving_allowed(self):
        assert savings_percent(1000.0, 1100.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            savings_percent(0.0, 10.0)


def measurement(app, category, base, governed, quality):
    return AppMeasurement(app_name=app, category=category,
                          baseline_power_mw=base,
                          governed_power_mw=governed,
                          display_quality=quality)


class TestAppMeasurement:
    def test_derived_fields(self):
        m = measurement("a", AppCategory.GENERAL, 1000.0, 800.0, 0.9)
        assert m.saved_power_mw == pytest.approx(200.0)
        assert m.saved_power_percent == pytest.approx(20.0)
        assert m.display_quality_percent == pytest.approx(90.0)

    def test_zero_baseline_rejected(self):
        m = measurement("a", AppCategory.GENERAL, 0.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            m.saved_power_percent


class TestSummaries:
    def _rows(self):
        return [
            measurement("g1", AppCategory.GENERAL, 1000.0, 800.0, 0.9),
            measurement("g2", AppCategory.GENERAL, 800.0, 700.0, 0.8),
            measurement("m1", AppCategory.GAME, 1200.0, 900.0, 0.95),
        ]

    def test_summarize_method(self):
        summary = summarize_method("section", AppCategory.GENERAL,
                                   self._rows())
        assert summary.n_apps == 2
        assert summary.saved_power_mw.mean == pytest.approx(150.0)
        assert summary.display_quality_percent.mean == pytest.approx(85.0)

    def test_summarize_empty_category_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_method("section", AppCategory.GAME, [
                measurement("g", AppCategory.GENERAL, 1.0, 1.0, 1.0)])

    def test_summarize_categories_structure(self):
        summaries = summarize_categories({"section": self._rows(),
                                          "section+boost": self._rows()})
        assert len(summaries) == 2
        for summary in summaries:
            assert set(summary.methods) == {"section", "section+boost"}

    def test_empty_methods_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_categories({})


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"],
                            [["a", "1"], ["longer", "22"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data lines share the header's width.
        assert len(lines[3]) == len(lines[1])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [["only-one"]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])
