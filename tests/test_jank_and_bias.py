"""Tests for jank analysis, biased section tables, LCD calibration."""

import pytest

import repro
from repro.analysis.jank import analyze_jank, session_jank
from repro.core.section_table import SectionTable
from repro.errors import ConfigurationError
from repro.power.calibration import (
    galaxy_s3_calibration,
    lcd_phone_calibration,
)

GS3_RATES = (20.0, 24.0, 30.0, 40.0, 60.0)


class TestAnalyzeJank:
    def test_no_content_no_jank(self):
        report = analyze_jank([], [1.0, 2.0], duration_s=10.0)
        assert report.total_lost == 0
        assert report.lost_fraction == 0.0
        assert report.worst_run == 0

    def test_every_content_displayed(self):
        report = analyze_jank([1.0, 2.0, 3.0], [1.01, 2.01, 3.01],
                              duration_s=10.0)
        assert report.total_lost == 0
        assert len(report.episodes) == 0

    def test_coalesced_run_detected(self):
        # Four content instants collapse into one displayed frame:
        # 3 lost in a row -> one jank episode.
        content = [1.0, 1.02, 1.04, 1.06]
        displayed = [1.1]
        report = analyze_jank(content, displayed, duration_s=10.0,
                              min_run=3)
        assert report.total_lost == 3
        assert len(report.episodes) == 1
        assert report.worst_run == 3

    def test_scattered_drops_are_not_jank(self):
        # One lost instant per gap: lost but never a visible freeze.
        content = [1.0, 1.05, 2.0, 2.05, 3.0, 3.05]
        displayed = [1.1, 2.1, 3.1]
        report = analyze_jank(content, displayed, duration_s=10.0,
                              min_run=3)
        assert report.total_lost == 3
        assert len(report.episodes) == 0

    def test_content_after_last_display_counts(self):
        content = [5.0, 5.02, 5.04, 5.06, 5.08]
        displayed = [1.0]
        report = analyze_jank(content, displayed, duration_s=10.0,
                              min_run=3)
        # All five are in the trailing gap; four beyond the first lost.
        assert report.total_lost == 4
        assert report.episodes[0][0] == 10.0

    def test_episodes_per_minute(self):
        report = analyze_jank([1.0, 1.01, 1.02, 1.03], [1.1],
                              duration_s=30.0, min_run=3)
        assert report.episodes_per_minute == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            analyze_jank([], [], duration_s=0.0)
        with pytest.raises(ConfigurationError):
            analyze_jank([], [], duration_s=1.0, min_run=0)


class TestSessionJank:
    def test_boost_reduces_jank_episodes(self):
        results = {}
        for governor in ("section", "section+boost"):
            result = repro.run_session(repro.SessionConfig(
                app="Jelly Splash", governor=governor,
                duration_s=40.0, seed=1))
            results[governor] = session_jank(result)
        assert results["section+boost"].total_lost <= \
            results["section"].total_lost
        assert len(results["section+boost"].episodes) <= \
            len(results["section"].episodes)

    def test_fixed_baseline_mostly_jank_free(self):
        result = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="fixed", duration_s=30.0,
            seed=1))
        report = session_jank(result)
        # Animation content below 60 fps barely coalesces at 60 Hz.
        assert report.lost_fraction < 0.05


class TestBiasedSectionTable:
    def test_bias_one_shifts_every_section_up(self):
        table = SectionTable.from_rates(GS3_RATES).biased(1)
        assert table.lookup(5.0) == 24.0     # was 20
        assert table.lookup(15.0) == 30.0    # was 24
        assert table.lookup(25.0) == 40.0    # was 30
        assert table.lookup(30.0) == 60.0    # was 40
        assert table.lookup(50.0) == 60.0

    def test_top_sections_merge(self):
        table = SectionTable.from_rates(GS3_RATES).biased(1)
        # [27, 35) and [35, inf) both select 60 -> merged.
        assert len(table.sections) == 4
        assert table.sections[-1].low == 27.0

    def test_bias_zero_is_identity(self):
        table = SectionTable.from_rates(GS3_RATES)
        assert table.biased(0) is table

    def test_large_bias_collapses_to_max(self):
        table = SectionTable.from_rates(GS3_RATES).biased(10)
        assert len(table.sections) == 1
        assert table.lookup(0.0) == 60.0

    def test_invariants_preserved(self):
        for steps in (1, 2, 3):
            table = SectionTable.from_rates(GS3_RATES).biased(steps)
            assert table.headroom_ok()
            assert table.sections[0].low == 0.0
            assert table.sections[-1].high == float("inf")

    def test_negative_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            SectionTable.from_rates(GS3_RATES).biased(-1)

    def test_biased_lookup_dominates_plain(self):
        plain = SectionTable.from_rates(GS3_RATES)
        biased = plain.biased(1)
        for c10 in range(0, 600, 7):
            c = c10 / 10.0
            assert biased.lookup(c) >= plain.lookup(c)

    def test_table_bias_session_option(self):
        from repro.core import quality_vs_baseline
        base = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="fixed", duration_s=20.0,
            seed=2))
        plain = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="section", duration_s=20.0,
            seed=2))
        smooth = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="section", duration_s=20.0,
            seed=2, table_bias=1))
        # Smooth mode runs a higher refresh and recovers quality...
        assert smooth.mean_refresh_rate_hz > plain.mean_refresh_rate_hz
        q_plain = quality_vs_baseline(plain.mean_content_rate_fps,
                                      base.mean_content_rate_fps)
        q_smooth = quality_vs_baseline(smooth.mean_content_rate_fps,
                                       base.mean_content_rate_fps)
        assert q_smooth >= q_plain
        # ... at a power cost (still cheaper than fixed 60 Hz).
        p_base = base.power_report().mean_power_mw
        p_plain = plain.power_report().mean_power_mw
        p_smooth = smooth.power_report().mean_power_mw
        assert p_plain <= p_smooth <= p_base

    def test_negative_table_bias_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.SessionConfig(app="Facebook", table_bias=-1)


class TestLcdCalibration:
    def test_lcd_saves_less_than_amoled(self):
        result_base = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="fixed", duration_s=15.0, seed=1))
        result_gov = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section", duration_s=15.0,
            seed=1))
        for name, cal in (("amoled", galaxy_s3_calibration()),
                          ("lcd", lcd_phone_calibration())):
            model = repro.PowerModel(cal)
            saved = (result_base.power_report(model).mean_power_mw -
                     result_gov.power_report(model).mean_power_mw)
            if name == "amoled":
                amoled_saved = saved
            else:
                assert saved < amoled_saved

    def test_lcd_base_floor_higher(self):
        assert lcd_phone_calibration().device_base_mw > \
            galaxy_s3_calibration().device_base_mw
