"""Tests for error-isolated batch execution (`repro.sim.batch`)."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.sim.batch import (
    batch_failure_summary,
    format_batch_failures,
    is_failure_record,
    make_failure_record,
    run_batch,
)
from repro.sim.session import SessionConfig


def _configs(bad_index=None, n=3, duration_s=5.0):
    """N cheap configs; the one at ``bad_index`` names an unknown app."""
    configs = []
    for i in range(n):
        app = "NoSuchApp" if i == bad_index else "Facebook"
        configs.append(SessionConfig(app=app, governor="section",
                                     duration_s=duration_s, seed=i + 1))
    return configs


class TestFailureRecords:
    def test_make_failure_record_fields(self):
        config = SessionConfig(app="Facebook", governor="section",
                               duration_s=5.0, seed=7)
        error = WorkloadError("no such app",
                              context={"subsystem": "apps"})
        record = make_failure_record(2, config, error, attempts=3)
        assert record["batch_failed"] is True
        assert record["config_index"] == 2
        assert record["app"] == "Facebook"
        assert record["governor"] == "section"
        assert record["seed"] == 7
        assert record["duration_s"] == 5.0
        assert record["error_type"] == "WorkloadError"
        assert record["error_message"] == "no such app"
        assert record["context"] == {"subsystem": "apps"}
        assert record["attempts"] == 3

    def test_context_defaults_empty_for_plain_exceptions(self):
        config = SessionConfig(app="Facebook", duration_s=5.0)
        record = make_failure_record(0, config, ValueError("boom"),
                                     attempts=1)
        assert record["context"] == {}
        assert record["error_type"] == "ValueError"

    def test_is_failure_record(self):
        assert is_failure_record({"batch_failed": True})
        assert not is_failure_record({"app": "Facebook"})
        assert not is_failure_record({})

    def test_batch_failure_summary_counts(self):
        ok = {"app": "Facebook"}
        bad = {"batch_failed": True, "config_index": 1}
        summary = batch_failure_summary([ok, bad, ok])
        assert summary["total"] == 3
        assert summary["succeeded"] == 2
        assert summary["failed"] == 1
        assert summary["failures"] == [bad]

    def test_format_batch_failures(self):
        config = SessionConfig(app="Facebook", governor="section",
                               duration_s=5.0, seed=7)
        error = WorkloadError("no such app",
                              context={"subsystem": "apps"})
        record = make_failure_record(1, config, error, attempts=2)
        text = format_batch_failures([{"app": "ok"}, record])
        assert "1/2 sessions succeeded" in text
        assert "#1 Facebook" in text
        assert "WorkloadError: no such app" in text
        assert "subsystem=apps" in text
        assert "after 2 attempt(s)" in text


class TestBatchIsolation:
    @pytest.mark.parametrize("processes", [1, 2])
    def test_one_bad_config_isolated(self, processes):
        configs = _configs(bad_index=1)
        results = run_batch(configs, processes=processes)
        assert len(results) == 3
        assert not is_failure_record(results[0])
        assert is_failure_record(results[1])
        assert not is_failure_record(results[2])
        # Results stay in input order: seeds identify the configs.
        assert results[0]["seed"] == 1
        assert results[2]["seed"] == 3
        record = results[1]
        assert record["config_index"] == 1
        assert record["app"] == "NoSuchApp"
        assert record["error_type"] == "WorkloadError"
        assert record["attempts"] == 1

    def test_all_good_batch_has_no_failures(self):
        results = run_batch(_configs(), processes=1)
        summary = batch_failure_summary(results)
        assert summary["failed"] == 0
        assert summary["succeeded"] == 3

    def test_retries_counted_in_record(self):
        configs = _configs(bad_index=0, n=1)
        results = run_batch(configs, processes=1, retries=2)
        assert results[0]["attempts"] == 3

    def test_on_error_raise_propagates(self):
        configs = _configs(bad_index=1)
        with pytest.raises(WorkloadError):
            run_batch(configs, processes=1, on_error="raise")

    @pytest.mark.parametrize("processes", [1, 2])
    def test_serial_and_pooled_agree(self, processes):
        configs = _configs(bad_index=2, duration_s=4.0)
        results = run_batch(configs, processes=processes)
        record = results[2]
        assert is_failure_record(record)
        assert record["error_type"] == "WorkloadError"
        assert [is_failure_record(r) for r in results] == \
            [False, False, True]

    def test_summaries_match_serial_vs_pooled(self):
        configs = _configs(duration_s=4.0)
        serial = run_batch(configs, processes=1)
        pooled = run_batch(configs, processes=2)
        assert serial == pooled


class TestBatchValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch([])

    def test_bad_processes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=1), processes=0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=1), retries=-1)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=1), timeout_s=0.0)

    def test_bad_on_error_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch(_configs(n=1), on_error="explode")
