"""Tests for grid-based comparison (GridSpec, GridComparator)."""

import numpy as np
import pytest

from repro.core.grid import PAPER_PIXEL_BUDGETS, GridComparator, GridSpec
from repro.errors import MeteringError

GS3_SHAPE = (1280, 720)  # (height, width)


class TestGridSpecConstruction:
    def test_paper_budgets_reproduce_paper_grids(self):
        # Figure 6's operating points on the 720x1280 panel.
        expected = {
            "2K": (64, 36),      # (grid_height, grid_width)
            "4K": (85, 48),
            "9K": (128, 72),
            "36K": (256, 144),
            "921K": (1280, 720),
        }
        for label, samples in PAPER_PIXEL_BUDGETS.items():
            grid = GridSpec.from_sample_count(GS3_SHAPE, samples)
            assert (grid.grid_height, grid.grid_width) == expected[label], \
                label

    def test_sample_count(self):
        grid = GridSpec.from_sample_count(GS3_SHAPE, 9216)
        assert grid.sample_count == 9216

    def test_full_grid(self):
        grid = GridSpec.full((12, 10))
        assert grid.is_full
        assert grid.sample_count == 120

    def test_oversized_request_caps_at_full(self):
        grid = GridSpec.from_sample_count((12, 10), 10_000)
        assert grid.is_full

    def test_from_cell_size(self):
        grid = GridSpec.from_cell_size(GS3_SHAPE, 10)
        assert (grid.grid_height, grid.grid_width) == (128, 72)

    def test_grid_larger_than_buffer_rejected(self):
        with pytest.raises(MeteringError):
            GridSpec((10, 10), 11, 5)

    def test_coverage_fraction(self):
        grid = GridSpec.from_sample_count(GS3_SHAPE, 9216)
        assert grid.coverage_fraction == pytest.approx(0.01)


class TestGridSampling:
    def test_sample_indices_in_bounds(self):
        for samples in PAPER_PIXEL_BUDGETS.values():
            grid = GridSpec.from_sample_count(GS3_SHAPE, samples)
            assert grid.sample_rows.max() < GS3_SHAPE[0]
            assert grid.sample_cols.max() < GS3_SHAPE[1]
            assert grid.sample_rows.min() >= 0
            assert grid.sample_cols.min() >= 0

    def test_sample_points_are_cell_centres(self):
        grid = GridSpec((100, 100), 10, 10)
        assert np.array_equal(grid.sample_rows,
                              np.arange(5, 100, 10))
        assert np.array_equal(grid.sample_cols,
                              np.arange(5, 100, 10))

    def test_sample_indices_strictly_increasing(self):
        grid = GridSpec.from_sample_count(GS3_SHAPE, 9216)
        assert (np.diff(grid.sample_rows) > 0).all()
        assert (np.diff(grid.sample_cols) > 0).all()

    def test_sample_extracts_expected_pixels(self):
        pixels = np.arange(100 * 100 * 3, dtype=np.uint8).reshape(
            100, 100, 3)
        grid = GridSpec((100, 100), 2, 2)
        sampled = grid.sample(pixels)
        assert sampled.shape == (2, 2, 3)
        assert np.array_equal(sampled[0, 0], pixels[25, 25])
        assert np.array_equal(sampled[1, 1], pixels[75, 75])

    def test_sample_is_a_copy(self):
        pixels = np.zeros((10, 10, 3), dtype=np.uint8)
        grid = GridSpec((10, 10), 2, 2)
        sampled = grid.sample(pixels)
        pixels[:] = 99
        assert sampled.sum() == 0

    def test_sample_wrong_shape_rejected(self):
        grid = GridSpec((10, 10), 2, 2)
        with pytest.raises(MeteringError):
            grid.sample(np.zeros((11, 10, 3), dtype=np.uint8))


class TestGridComparator:
    def _frames(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 256, size=(100, 100, 3), dtype=np.uint8)
        return a, a.copy()

    def test_equal_frames_compare_equal(self):
        a, b = self._frames()
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        assert comp.frames_equal(a, b)

    def test_large_change_detected(self):
        a, b = self._frames()
        b[40:60, 40:60] = 0
        a[40:60, 40:60] = 255
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        assert not comp.frames_equal(a, b)

    def test_change_between_grid_points_missed(self):
        a, b = self._frames()
        # Grid samples at 5, 15, 25...; change rows 6..9 only (between
        # sample rows), columns likewise.
        a[6:10, 6:10] = a[6:10, 6:10] + 1
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        assert comp.frames_equal(a, b)  # the grid cannot see it

    def test_full_grid_sees_single_pixel_change(self):
        a, b = self._frames()
        a[7, 3, 0] ^= 0xFF
        comp = GridComparator(GridSpec.full((100, 100)))
        assert not comp.frames_equal(a, b)

    def test_sampled_previous_frame_supported(self):
        a, b = self._frames()
        grid = GridSpec((100, 100), 10, 10)
        comp = GridComparator(grid)
        prev_samples = grid.sample(b)
        assert comp.frames_equal(a, prev_samples)
        a[5, 5] = 255 - a[5, 5]  # on a sample point
        assert not comp.frames_equal(a, prev_samples)

    def test_incompatible_previous_shape_rejected(self):
        a, _ = self._frames()
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        with pytest.raises(MeteringError):
            comp.frames_equal(a, np.zeros((3, 3, 3), dtype=np.uint8))

    def test_counters(self):
        a, b = self._frames()
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        comp.frames_equal(a, b)
        a[5, 5] = 255 - a[5, 5]
        comp.frames_equal(a, b)
        assert comp.comparisons == 2
        assert comp.mismatches == 1
