"""The governor zoo: policy behaviour, registration, touch-boost
chaining, and the vector-eligibility allowlist regression.

The four related-work governors (luminance, scene, burst, predictive)
are registered builtins, so they must behave like any other selector:
valid in :class:`~repro.sim.session.SessionConfig`, identical serial
vs pooled, and routed to the scalar engine by the eligibility probe
(none of them are on the vector allowlist).
"""

import json

import numpy as np
import pytest

from repro.core.governor import GovernorPolicy, TouchBoostGovernor
from repro.core.section_table import SectionTable
from repro.display.presets import GALAXY_S3_PANEL
from repro.errors import ConfigurationError
from repro.governors import (
    BurstRefreshGovernor,
    ContentLuminanceGovernor,
    PredictiveRateGovernor,
    SceneRateGovernor,
)
from repro.graphics.framebuffer import Framebuffer
from repro.pipeline.eligibility import (
    CODE_GOVERNOR,
    VECTOR_GOVERNORS,
    probe_vector_eligibility,
)
from repro.pipeline.governors import GOVERNORS, GovernorContext
from repro.power.oled import OledModel
from repro.sim.batch import run_batch
from repro.sim.session import GOVERNOR_CHOICES, SessionConfig, \
    run_session
from repro.sim.tracing import EventLog
from repro.sim.vector import VectorRunner

ZOO = ("luminance", "scene", "burst", "predictive")


class StubMeter:
    """A content-rate meter stub with a settable reading."""

    def __init__(self, rate=0.0):
        self.rate = rate
        self.meaningful_frames = EventLog("meaningful")

    def content_rate(self, now, window_s=None):
        del now, window_s
        return self.rate


class StubPolicy(GovernorPolicy):
    name = "stub"

    def __init__(self, rate_hz, touch_rate_hz=None):
        self.rate_hz = rate_hz
        self.touch_rate_hz = touch_rate_hz
        self.touches = 0

    def select_rate(self, now):
        del now
        return self.rate_hz

    def on_touch(self, time):
        del time
        self.touches += 1
        return self.touch_rate_hz


def section_table():
    return SectionTable.for_panel(GALAXY_S3_PANEL)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
class TestZooRegistration:
    def test_zoo_selectors_are_builtins(self):
        for governor in ZOO:
            assert governor in GOVERNOR_CHOICES
            assert governor in GOVERNORS.builtin_names()

    def test_builtin_order_keeps_paper_policies_first(self):
        assert GOVERNOR_CHOICES[:7] == (
            "fixed", "section", "section+boost", "section+hysteresis",
            "naive", "oracle", "e3")
        assert GOVERNOR_CHOICES[7:] == ZOO

    @pytest.mark.parametrize("governor", ZOO)
    def test_zoo_governor_runs_a_session(self, governor):
        result = run_session(SessionConfig(
            app="Facebook", governor=governor, duration_s=3.0,
            seed=1))
        assert result.mean_refresh_rate_hz > 0

    def test_luminance_factory_requires_framebuffer(self):
        result = run_session(SessionConfig(
            app="Facebook", governor="fixed", duration_s=1.0, seed=1))
        context = GovernorContext(
            panel=result.panel, meter=StubMeter(),
            application=None)
        with pytest.raises(ConfigurationError):
            GOVERNORS.get("luminance")(context)

    @pytest.mark.parametrize("governor", ZOO)
    def test_zoo_serial_equals_pooled(self, governor):
        configs = [SessionConfig(app=app, governor=governor,
                                 duration_s=3.0, seed=2)
                   for app in ("Facebook", "Jelly Splash")]
        serial = run_batch(configs, workers=1)
        pooled = run_batch(configs, workers=2, mp_context="fork")
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))


# ----------------------------------------------------------------------
# Content-luminance governor (SmartNight lineage)
# ----------------------------------------------------------------------
class TestContentLuminance:
    def build(self, level, inner_rate=40.0):
        framebuffer = Framebuffer(8, 8)
        framebuffer.pixels[:] = level
        inner = StubPolicy(inner_rate)
        policy = ContentLuminanceGovernor(
            inner, framebuffer, GALAXY_S3_PANEL.refresh_rates_hz)
        return policy

    def test_dark_frame_steps_down(self):
        dark = self.build(level=0)
        light = self.build(level=255)
        assert dark.select_rate(0.0) < light.select_rate(0.0)
        assert light.select_rate(0.0) == 40.0

    def test_deep_dark_steps_twice(self):
        policy = self.build(level=0)
        # 40 Hz is index 3 of (20, 24, 30, 40, 60): two steps -> 24.
        assert policy.select_rate(0.0) == 24.0
        assert policy.last_luminance < policy.deep_dark_threshold

    def test_floor_clamps(self):
        policy = self.build(level=0, inner_rate=20.0)
        assert policy.select_rate(0.0) == 20.0

    def test_emission_shape_monotone(self):
        """Property: darker content -> lower emission -> never a
        *higher* rate than lighter content (the dark-beats-light
        shape the tournament probe demonstrates end to end)."""
        model = OledModel()
        levels = list(range(0, 256, 15))
        emissions = []
        rates = []
        luminances = []
        for level in levels:
            policy = self.build(level=level)
            rates.append(policy.select_rate(0.0))
            luminances.append(policy.last_luminance)
            pixels = np.full((8, 8, 3), level, dtype=np.uint8)
            emissions.append(model.frame_power_mw(pixels))
        assert emissions == sorted(emissions)
        assert rates == sorted(rates)
        assert luminances == sorted(luminances)
        assert 0.0 <= min(luminances) <= max(luminances) <= 1.0

    def test_threshold_validation(self):
        framebuffer = Framebuffer(4, 4)
        with pytest.raises(ConfigurationError):
            ContentLuminanceGovernor(
                StubPolicy(40.0), framebuffer, (20.0, 60.0),
                dark_threshold=0.1, deep_dark_threshold=0.5)

    def test_touch_chains_to_inner(self):
        policy = self.build(level=0)
        assert policy.on_touch(1.0) is None
        assert policy.inner.touches == 1


# ----------------------------------------------------------------------
# Scene-rate governor (EVSO lineage)
# ----------------------------------------------------------------------
class TestSceneRate:
    def test_rate_latches_within_scene(self):
        meter = StubMeter(rate=24.0)
        policy = SceneRateGovernor(section_table(), meter)
        first = policy.select_rate(0.0)
        meter.rate = 26.0  # drift below the boundary threshold
        assert policy.select_rate(1.0) == first
        assert policy.scenes == 1

    def test_scene_boundary_relatches(self):
        meter = StubMeter(rate=24.0)
        policy = SceneRateGovernor(section_table(), meter)
        slow = policy.select_rate(0.0)
        meter.rate = 2.0
        fast_cut = policy.select_rate(1.0)
        assert policy.scenes == 2
        assert fast_cut < slow

    def test_silent_scene_ends_when_content_starts(self):
        meter = StubMeter(rate=0.0)
        policy = SceneRateGovernor(section_table(), meter)
        idle = policy.select_rate(0.0)
        meter.rate = 30.0
        assert policy.select_rate(1.0) > idle
        assert policy.scenes == 2

    def test_change_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            SceneRateGovernor(section_table(), StubMeter(),
                              change_fraction=0.0)


# ----------------------------------------------------------------------
# Burst-mode governor (BurstLink lineage)
# ----------------------------------------------------------------------
class TestBurstMode:
    def test_static_screen_sits_at_floor(self):
        policy = BurstRefreshGovernor(
            GALAXY_S3_PANEL.refresh_rates_hz, StubMeter(rate=0.0))
        assert policy.select_rate(0.25) == policy.floor_hz

    def test_saturated_screen_holds_ceiling(self):
        policy = BurstRefreshGovernor(
            GALAXY_S3_PANEL.refresh_rates_hz, StubMeter(rate=60.0))
        for now in (0.0, 0.4, 0.9):
            assert policy.select_rate(now) == policy.ceiling_hz

    def test_duty_cycle_bursts_then_dwells(self):
        policy = BurstRefreshGovernor(
            GALAXY_S3_PANEL.refresh_rates_hz, StubMeter(rate=30.0),
            period_s=1.0)
        # duty = 30/60 = 0.5: ceiling in the first half-period,
        # floor in the second.
        assert policy.select_rate(0.1) == policy.ceiling_hz
        assert policy.select_rate(0.75) == policy.floor_hz

    def test_touch_opens_burst(self):
        policy = BurstRefreshGovernor(
            GALAXY_S3_PANEL.refresh_rates_hz, StubMeter(rate=0.0))
        assert policy.on_touch(0.9) == policy.ceiling_hz

    def test_needs_rates(self):
        with pytest.raises(ConfigurationError):
            BurstRefreshGovernor((), StubMeter())


# ----------------------------------------------------------------------
# Predictive-rate governor (dynamic-sampling-rate lineage)
# ----------------------------------------------------------------------
class TestPredictiveRate:
    def test_no_history_means_idle(self):
        policy = PredictiveRateGovernor(section_table(), StubMeter())
        assert policy.forecast_rate(0.0) == 0.0
        assert policy.select_rate(0.0) == \
            GALAXY_S3_PANEL.min_refresh_hz

    def test_steady_stream_forecast(self):
        meter = StubMeter()
        meter.meaningful_frames.extend(
            [i / 24.0 for i in range(1, 25)])
        policy = PredictiveRateGovernor(section_table(), meter)
        assert policy.forecast_rate(1.0) == pytest.approx(24.0)

    def test_idle_gap_decays_forecast(self):
        meter = StubMeter()
        meter.meaningful_frames.extend(
            [i / 24.0 for i in range(1, 25)])
        policy = PredictiveRateGovernor(section_table(), meter)
        busy = policy.forecast_rate(1.0)
        quiet = policy.forecast_rate(6.0)
        assert quiet < busy
        assert quiet == pytest.approx(1.0 / 5.0)

    def test_incremental_ingest_consumes_each_event_once(self):
        meter = StubMeter()
        meter.meaningful_frames.extend([0.1, 0.2])
        policy = PredictiveRateGovernor(section_table(), meter,
                                        alpha=0.5)
        policy.select_rate(0.3)
        first = policy._ewma_interval
        policy.select_rate(0.35)  # no new events: EWMA untouched
        assert policy._ewma_interval == first
        meter.meaningful_frames.append(0.4)
        policy.select_rate(0.45)
        assert policy._ewma_interval != first

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PredictiveRateGovernor(section_table(), StubMeter(),
                                   alpha=0.0)
        with pytest.raises(ConfigurationError):
            PredictiveRateGovernor(section_table(), StubMeter(),
                                   idle_factor=-1.0)


# ----------------------------------------------------------------------
# Touch-boost chaining (bugfix regression)
# ----------------------------------------------------------------------
class TestTouchBoostChaining:
    def test_inner_none_yields_boost_rate(self):
        policy = TouchBoostGovernor(StubPolicy(30.0),
                                    boost_rate_hz=60.0, hold_s=1.0)
        assert policy.on_touch(0.0) == 60.0
        assert policy.inner.touches == 1

    def test_inner_higher_immediate_rate_wins(self):
        # Regression: the wrapper used to discard the inner policy's
        # immediate rate, so a composed policy demanding more than
        # the boost rate was silently capped.
        policy = TouchBoostGovernor(
            StubPolicy(30.0, touch_rate_hz=90.0),
            boost_rate_hz=60.0, hold_s=1.0)
        assert policy.on_touch(0.0) == 90.0

    def test_inner_lower_immediate_rate_does_not_weaken_boost(self):
        policy = TouchBoostGovernor(
            StubPolicy(30.0, touch_rate_hz=24.0),
            boost_rate_hz=60.0, hold_s=1.0)
        assert policy.on_touch(0.0) == 60.0


# ----------------------------------------------------------------------
# Vector-eligibility allowlist (bugfix regression)
# ----------------------------------------------------------------------
class ThirdPartyGovernor(GovernorPolicy):
    name = "third-party"

    def __init__(self, rate_hz):
        self.rate_hz = rate_hz

    def select_rate(self, now):
        del now
        return self.rate_hz


def make_third_party(context):
    # Module-level: pooled workers import this by reference.
    return ThirdPartyGovernor(context.spec.refresh_rates_hz[0])


@pytest.fixture
def third_party_governor():
    GOVERNORS.register("third-party", make_third_party)
    try:
        yield "third-party"
    finally:
        GOVERNORS.unregister("third-party")


class TestEligibilityAllowlist:
    def test_zoo_is_off_the_allowlist(self):
        for governor in ZOO:
            assert governor not in VECTOR_GOVERNORS

    @pytest.mark.parametrize("governor", ZOO)
    def test_zoo_governor_probes_ineligible_with_code(self, governor):
        verdict = probe_vector_eligibility(SessionConfig(
            app="Facebook", governor=governor, duration_s=3.0))
        assert not verdict.eligible
        assert verdict.codes == (CODE_GOVERNOR,)
        assert len(verdict.codes) == len(verdict.reasons)

    def test_eligible_config_has_no_codes(self):
        verdict = probe_vector_eligibility(SessionConfig(
            app="Facebook", governor="fixed", duration_s=3.0))
        assert verdict.eligible
        assert verdict.codes == ()
        assert verdict.reasons == ()

    def test_third_party_governor_probes_ineligible(
            self, third_party_governor):
        verdict = probe_vector_eligibility(SessionConfig(
            app="Facebook", governor="third-party", duration_s=3.0))
        assert not verdict.eligible
        assert CODE_GOVERNOR in verdict.codes
        assert "third-party" in " ".join(verdict.reasons)

    def test_vector_runner_refuses_with_codes(
            self, third_party_governor):
        config = SessionConfig(app="Facebook",
                               governor="third-party",
                               duration_s=3.0)
        with pytest.raises(ConfigurationError) as excinfo:
            VectorRunner(config)
        assert CODE_GOVERNOR in excinfo.value.context["codes"]

    def test_auto_and_vector_route_to_scalar_byte_identical(
            self, third_party_governor):
        # Regression: a registry-registered governor must never reach
        # the vector fast path; `auto`/`vector` fall back to scalar
        # and the summaries are byte-identical to an explicit scalar
        # run.
        configs = [SessionConfig(app="Facebook",
                                 governor="third-party",
                                 duration_s=3.0, seed=seed)
                   for seed in (1, 2)]
        scalar = run_batch(configs, engine="scalar")
        auto = run_batch(configs, engine="auto")
        vector = run_batch(configs, engine="vector")
        scalar_text = json.dumps(scalar, sort_keys=True)
        assert scalar_text == json.dumps(auto, sort_keys=True)
        assert scalar_text == json.dumps(vector, sort_keys=True)
        assert all(s["governor"] == "third-party" for s in scalar)
