"""Tests for the in-flight observability plane.

Covers the asyncio scrape listener (`repro.service.http`) — unit-level
routing plus a real in-process service answering `/metrics` with
parseable v0.0.4 text while jobs run — job-scoped tracing
(`repro.telemetry.tracing`): deterministic trace IDs, journal →
Chrome-trace folding across simulated `kill -9` generations,
checkpoint trace-ID round trips; heartbeat staleness detection; the
`repro top` console; and the CLI surfaces (`trace-export`, `top`,
`stats --format prom`, `submit` trace echo, `status` staleness flag).
"""

import asyncio
import io
import json
import time

import pytest

from repro.cli import main
from repro.errors import ServiceError, TelemetryError
from repro.pipeline.spec import SessionSpec
from repro.service import (
    JobRequest,
    ServiceConfig,
    ServicePaths,
    SessionService,
    submit_job,
)
from repro.service.console import gather_top, render_top, run_top
from repro.service.http import ObservabilityServer, fetch
from repro.service.service import _health_staleness, service_status
from repro.sim.runner import SessionRunner, resume_runner
from repro.sim.session import SessionConfig
from repro.telemetry.expose import parse_exposition
from repro.telemetry.tracing import (
    chrome_trace_document,
    journal_trace_events,
    mint_trace_id,
    validate_trace_id,
)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def _spec(duration_s=1.0, seed=0):
    return SessionSpec.from_config(SessionConfig(
        app="Jelly Splash", governor="section+boost",
        duration_s=duration_s, seed=seed))


def _submit(state_dir, job_id, seq=0, duration_s=1.0):
    submit_job(state_dir, JobRequest(
        job_id=job_id, spec=_spec(duration_s, seed=seq).to_json_dict(),
        deadline_s=None, submitted_seq=seq))


# ----------------------------------------------------------------------
# Trace IDs
# ----------------------------------------------------------------------

class TestTraceIds:
    def test_minting_is_deterministic(self):
        assert mint_trace_id("job-a", 3) == mint_trace_id("job-a", 3)

    def test_distinct_jobs_get_distinct_ids(self):
        assert mint_trace_id("job-a", 0) != mint_trace_id("job-b", 0)
        assert mint_trace_id("job-a", 0) != mint_trace_id("job-a", 1)

    def test_minted_ids_validate(self):
        trace_id = mint_trace_id("job-a", 0)
        assert validate_trace_id(trace_id) == trace_id
        assert len(trace_id) == 32

    @pytest.mark.parametrize("bad", ["", "xyz!", "ABCDEF12", "a" * 65])
    def test_invalid_ids_rejected(self, bad):
        with pytest.raises(TelemetryError):
            validate_trace_id(bad)

    def test_job_request_rejects_bad_trace_id(self):
        with pytest.raises(ServiceError):
            JobRequest(job_id="j", spec=_spec().to_json_dict(),
                       deadline_s=None, submitted_seq=0,
                       trace_id="not hex!")

    def test_job_request_trace_id_round_trips_json(self):
        trace_id = mint_trace_id("j", 0)
        job = JobRequest(job_id="j", spec=_spec().to_json_dict(),
                        deadline_s=None, submitted_seq=0,
                        trace_id=trace_id)
        again = JobRequest.from_json_dict(job.to_json_dict())
        assert again.trace_id == trace_id


class TestCheckpointTraceId:
    def test_checkpoint_carries_and_survives_resume(self):
        trace_id = mint_trace_id("j1", 0)
        runner = SessionRunner(SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=1.0, seed=0))
        runner.advance(0.5)
        document = runner.checkpoint_document(job_id="j1",
                                              trace_id=trace_id)
        assert document["trace_id"] == trace_id
        assert document["job_id"] == "j1"
        resumed = resume_runner(document)
        assert resumed.now == pytest.approx(runner.now)


# ----------------------------------------------------------------------
# Journal -> Chrome trace folding
# ----------------------------------------------------------------------

def _two_generation_journal(trace_id):
    """A synthetic journal: gen 0 is SIGKILLed mid-attempt, gen 1
    resumes and finishes — the crash-spanning export fixture."""
    return [
        {"op": "service_start", "seq": 1},
        {"op": "job_ingested", "seq": 2, "job_id": "j1",
         "trace_id": trace_id},
        {"op": "attempt_start", "seq": 3, "job_id": "j1",
         "trace_id": trace_id},
        {"op": "checkpoint_written", "seq": 4, "job_id": "j1",
         "trace_id": trace_id},
        # kill -9 lands here: no closing record in generation 0.
        {"op": "service_start", "seq": 1},
        {"op": "job_ingested", "seq": 2, "job_id": "j1",
         "trace_id": trace_id},
        {"op": "attempt_start", "seq": 3, "job_id": "j1",
         "trace_id": trace_id},
        {"op": "job_done", "seq": 4, "job_id": "j1",
         "trace_id": trace_id},
        {"op": "service_stop", "seq": 5},
    ]


class TestJournalTraceExport:
    def test_two_generations_one_timeline(self):
        trace_id = mint_trace_id("j1", 0)
        events = journal_trace_events(
            _two_generation_journal(trace_id))
        slices = [e for e in events if e.get("ph") == "X"]
        # gen 0: queue_wait + truncated attempt; gen 1: queue_wait +
        # completed attempt.
        assert len(slices) == 4
        assert {e["pid"] for e in slices} == {1, 2}
        # One lane for the one job, across both generations.
        assert {e["tid"] for e in slices} == {1}
        # Every slice carries the single trace id.
        assert {e["args"].get("trace_id") for e in slices} == \
            {trace_id}

    def test_kill_truncates_the_open_span_visibly(self):
        events = journal_trace_events(
            _two_generation_journal(mint_trace_id("j1", 0)))
        truncated = [e for e in events if e.get("ph") == "X"
                     and e["args"].get("truncated")]
        assert len(truncated) == 1
        assert truncated[0]["pid"] == 1

    def test_generations_get_process_metadata(self):
        events = journal_trace_events(
            _two_generation_journal(mint_trace_id("j1", 0)))
        names = [e for e in events
                 if e.get("ph") == "M"
                 and e.get("name") == "process_name"]
        assert {e["pid"] for e in names} == {1, 2}

    def test_job_filter(self):
        trace_id = mint_trace_id("j1", 0)
        events = journal_trace_events(
            _two_generation_journal(trace_id), job_ids=["other"])
        assert not [e for e in events if e.get("ph") == "X"]

    def test_completed_attempt_named_after_terminal_op(self):
        events = journal_trace_events(
            _two_generation_journal(mint_trace_id("j1", 0)))
        assert any(e.get("ph") == "X" and e["name"] == "job_done"
                   for e in events)

    def test_chrome_document_shape(self):
        document = chrome_trace_document(
            journal_trace_events(
                _two_generation_journal(mint_trace_id("j1", 0))),
            metadata={"source": "test"})
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Scrape listener
# ----------------------------------------------------------------------

class TestObservabilityServer:
    def _server(self, ready=True, metrics="repro_x_total 1\n"):
        return ObservabilityServer(
            metrics_text=lambda: metrics,
            health_document=lambda: {"state": "running"},
            ready=lambda: ready)

    def test_endpoints(self):
        async def scenario():
            server = self._server()
            host, port = await server.start()
            try:
                status, headers, body = await fetch(
                    host, port, "/metrics")
                assert status == 200
                assert headers["content-type"] == \
                    "text/plain; version=0.0.4; charset=utf-8"
                assert "repro_x_total 1" in body
                status, _, body = await fetch(host, port, "/healthz")
                assert status == 200
                assert json.loads(body)["state"] == "running"
                status, _, body = await fetch(host, port, "/readyz")
                assert status == 200
                assert json.loads(body) == {"ready": True}
                status, _, _ = await fetch(host, port, "/nope")
                assert status == 404
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_not_ready_is_503(self):
        async def scenario():
            server = self._server(ready=False)
            host, port = await server.start()
            try:
                status, _, body = await fetch(host, port, "/readyz")
                assert status == 503
                assert json.loads(body) == {"ready": False}
            finally:
                await server.stop()
        asyncio.run(scenario())

    def test_non_get_rejected(self):
        response = self._server()._route("POST", "/metrics")
        assert response.startswith(b"HTTP/1.0 405")

    def test_handler_exception_is_500(self):
        def explode():
            raise RuntimeError("boom")

        async def scenario():
            server = ObservabilityServer(
                metrics_text=explode,
                health_document=lambda: {}, ready=lambda: True)
            host, port = await server.start()
            try:
                status, _, body = await fetch(host, port, "/metrics")
            finally:
                await server.stop()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 500
        assert "boom" in body

    def test_query_string_ignored(self):
        response = self._server()._route("GET", "/metrics?x=1")
        assert response.startswith(b"HTTP/1.0 200")


class TestLiveServiceScrape:
    def test_metrics_scrape_while_jobs_in_flight(self, tmp_path):
        for index in range(2):
            _submit(tmp_path, f"job-{index}", seq=index)

        async def scenario():
            service = SessionService(ServiceConfig(
                state_dir=str(tmp_path), workers=2,
                slice_sleep_s=0.005, fsync_journal=False,
                until_idle=True, max_runtime_s=120.0, http_port=0))
            task = asyncio.ensure_future(service.serve())
            while service.http_address is None:
                assert not task.done(), task.result()
                await asyncio.sleep(0.01)
            host, port = service.http_address
            status, headers, body = await fetch(host, port, "/metrics")
            ready_status, _, _ = await fetch(host, port, "/readyz")
            health_status, _, health_body = await fetch(
                host, port, "/healthz")
            await task
            return (status, headers, body, ready_status,
                    health_status, health_body, port)

        (status, headers, body, ready_status,
         health_status, health_body, port) = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        families = parse_exposition(body)  # well-formed v0.0.4
        assert "repro_service_queue_depth" in families
        assert ready_status == 200
        assert health_status == 200
        health = json.loads(health_body)
        assert health["state"] == "running"
        assert health["http"]["port"] == port  # address published

    def test_final_health_omits_listener_address(self, tmp_path):
        _submit(tmp_path, "only-job")
        service = SessionService(ServiceConfig(
            state_dir=str(tmp_path), workers=1, slice_sleep_s=0.0,
            fsync_journal=False, until_idle=True,
            max_runtime_s=120.0, http_port=0))
        asyncio.run(service.serve())
        health = json.loads(
            ServicePaths(tmp_path).health_path.read_text())
        assert health["state"] == "stopped"
        assert "http" not in health

    def test_journal_records_carry_trace_and_wall(self, tmp_path):
        from repro.service import read_journal
        _submit(tmp_path, "traced-job")
        service = SessionService(ServiceConfig(
            state_dir=str(tmp_path), workers=1, slice_sleep_s=0.0,
            fsync_journal=False, until_idle=True, max_runtime_s=120.0))
        asyncio.run(service.serve())
        journal = read_journal(ServicePaths(tmp_path).journal_path)
        expected = mint_trace_id("traced-job", 0)
        job_records = journal.ops_for("traced-job")
        assert job_records
        assert {r["trace_id"] for r in job_records} == {expected}
        assert all(isinstance(r.get("wall_s"), float)
                   for r in job_records)


# ----------------------------------------------------------------------
# Staleness
# ----------------------------------------------------------------------

class TestHealthStaleness:
    def _write_health(self, tmp_path, **fields):
        paths = ServicePaths(tmp_path).ensure()
        paths.health_path.write_text(json.dumps(fields))
        return paths

    def test_fresh_heartbeat_not_stale(self, tmp_path):
        paths = self._write_health(
            tmp_path, state="running", health_period_s=0.25,
            written_unix=time.time())
        age, stale = _health_staleness(
            paths, json.loads(paths.health_path.read_text()))
        assert not stale
        assert age == pytest.approx(0.0, abs=1.0)

    def test_old_heartbeat_is_stale(self, tmp_path):
        status = self._status_for(tmp_path, state="running")
        assert status["health_stale"]
        assert status["health_age_s"] > 0.5

    def test_stopped_state_never_stale(self, tmp_path):
        status = self._status_for(tmp_path, state="stopped")
        assert not status["health_stale"]

    def test_missing_health_not_stale(self, tmp_path):
        ServicePaths(tmp_path).ensure()
        status = service_status(tmp_path)
        assert not status["health_stale"]
        assert status["health_age_s"] is None

    def _status_for(self, tmp_path, state):
        self._write_health(
            tmp_path, state=state, health_period_s=0.25,
            written_unix=time.time() - 10.0)
        return service_status(tmp_path)


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------

class TestTopConsole:
    def test_stopped_service_frame(self, tmp_path):
        _submit(tmp_path, "done-job")
        service = SessionService(ServiceConfig(
            state_dir=str(tmp_path), workers=1, slice_sleep_s=0.0,
            fsync_journal=False, until_idle=True, max_runtime_s=120.0))
        asyncio.run(service.serve())
        snapshot = gather_top(tmp_path)
        assert snapshot["metrics"] is None
        assert snapshot["scrape_error"] == "service is stopped"
        frame = render_top(snapshot)
        assert "repro top" in frame
        assert "1 done" in frame
        assert "service is stopped" in frame

    def test_render_span_and_shard_tables(self):
        metrics = parse_exposition(
            "# TYPE repro_worker_jobs_dispatched_total counter\n"
            'repro_worker_jobs_dispatched_total{shard="0"} 2\n'
            "# TYPE repro_span_service_slice_seconds histogram\n"
            'repro_span_service_slice_seconds_bucket'
            '{le="0.001",shard="0"} 8\n'
            'repro_span_service_slice_seconds_bucket'
            '{le="+Inf",shard="0"} 10\n'
            'repro_span_service_slice_seconds_sum{shard="0"} 0.05\n'
            'repro_span_service_slice_seconds_count{shard="0"} 10\n')
        frame = render_top({
            "status": {"state_dir": "x",
                       "counts": {"done": 0, "failed": 0,
                                  "rejected": 0, "parked": 0,
                                  "pending": 1}},
            "health": {"state": "running", "ready": True,
                       "queue_depth": 1, "in_flight": 1,
                       "jobs": {"running": 1},
                       "breaker": {"state": "closed"}},
            "metrics": metrics, "scrape_error": None})
        assert "per-shard throughput:" in frame
        assert "span latency (ms):" in frame
        assert "service_slice_seconds" in frame

    def test_run_top_iterations_and_interval_guard(self, tmp_path):
        ServicePaths(tmp_path).ensure()
        out = io.StringIO()
        assert run_top(tmp_path, interval_s=0.01, iterations=2,
                       clear=False, out=out) == 0
        assert out.getvalue().count("repro top") == 2
        with pytest.raises(ServiceError):
            run_top(tmp_path, interval_s=0.0, iterations=1)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------

class TestObservabilityCli:
    def _drained_state_dir(self, tmp_path):
        _submit(tmp_path, "cli-job")
        service = SessionService(ServiceConfig(
            state_dir=str(tmp_path), workers=1, slice_sleep_s=0.0,
            fsync_journal=False, until_idle=True, max_runtime_s=120.0))
        asyncio.run(service.serve())
        return tmp_path

    def test_submit_echoes_trace_id(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "submit", "--state-dir", str(tmp_path),
            "--app", "Jelly Splash", "--duration", "1")
        assert code == 0
        assert "(trace " in out

    def test_trace_export_writes_chrome_trace(self, capsys, tmp_path):
        state_dir = self._drained_state_dir(tmp_path / "state")
        out_path = tmp_path / "trace.json"
        code, out = run_cli(
            capsys, "trace-export", "--state-dir", str(state_dir),
            "--out", str(out_path))
        assert code == 0
        assert "trace event" in out
        document = json.loads(out_path.read_text())
        slices = [e for e in document["traceEvents"]
                  if e.get("ph") == "X"]
        assert any(e["name"] == "job_done" for e in slices)
        assert document["metadata"]["trace_ids"] == \
            [mint_trace_id("cli-job", 0)]

    def test_trace_export_needs_a_source(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace-export", "--out", "-"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_top_single_frame(self, capsys, tmp_path):
        state_dir = self._drained_state_dir(tmp_path)
        code, out = run_cli(
            capsys, "top", "--state-dir", str(state_dir),
            "--iterations", "1", "--no-clear")
        assert code == 0
        assert "repro top" in out
        assert "1 done" in out

    def test_status_flags_stale_heartbeat(self, capsys, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        paths.health_path.write_text(json.dumps(
            {"state": "running", "health_period_s": 0.25,
             "written_unix": time.time() - 60.0}))
        code, out = run_cli(capsys, "status",
                            "--state-dir", str(tmp_path))
        assert code == 0
        assert "STALE" in out

    def test_stats_prom_from_telemetry_stream(self, capsys, tmp_path):
        from repro.sim.session import run_session
        from repro.telemetry import TelemetryConfig
        stream = tmp_path / "out.jsonl"
        run_session(SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=1.0, seed=0,
            telemetry=TelemetryConfig(jsonl_path=str(stream))))
        code, out = run_cli(capsys, "stats", str(stream),
                            "--format", "prom")
        assert code == 0
        families = parse_exposition(out)
        assert "repro_stream_events_total" in families
        assert families["repro_stream_sessions"]["samples"][
            ("repro_stream_sessions", ())] == 1

    def test_stats_prom_from_bench_document(self, capsys, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({
            "schema": "repro-bench/1", "cpu_count": 2, "workers": 2,
            "metrics": {"native_session_s": {
                "value": 0.5, "unit": "s",
                "higher_is_better": False}}}))
        code, out = run_cli(capsys, "stats", str(bench),
                            "--format", "prom")
        assert code == 0
        families = parse_exposition(out)
        assert families["repro_bench_native_session_s"]["samples"][
            ("repro_bench_native_session_s", ())] == 0.5
