"""Tests for the hysteresis governor extension."""

import pytest

from repro.core.hysteresis import HysteresisGovernor
from repro.core.governor import GovernorPolicy
from repro.errors import ConfigurationError


class ScriptedPolicy(GovernorPolicy):
    """A policy replaying a fixed decision sequence (test double)."""

    name = "scripted"

    def __init__(self, rates, touch_rate=None):
        self._rates = list(rates)
        self._touch_rate = touch_rate
        self._index = 0

    def select_rate(self, now):
        rate = self._rates[min(self._index, len(self._rates) - 1)]
        self._index += 1
        return rate

    def on_touch(self, time):
        return self._touch_rate


class TestHysteresisGovernor:
    def test_upward_changes_pass_through(self):
        gov = HysteresisGovernor(ScriptedPolicy([20, 40, 60]),
                                 down_confirmations=3)
        assert gov.select_rate(0.0) == 20
        assert gov.select_rate(0.2) == 40
        assert gov.select_rate(0.4) == 60

    def test_downward_needs_confirmations(self):
        gov = HysteresisGovernor(ScriptedPolicy([60, 20, 20, 20, 20]),
                                 down_confirmations=3)
        assert gov.select_rate(0.0) == 60
        assert gov.select_rate(0.2) == 60  # 1st down request: held
        assert gov.select_rate(0.4) == 60  # 2nd: held
        assert gov.select_rate(0.6) == 20  # 3rd: applied
        assert gov.select_rate(0.8) == 20

    def test_oscillation_suppressed(self):
        # 60, then alternating 20/60 raw decisions: the damped output
        # never leaves 60.
        raw = [60] + [20, 60] * 5
        gov = HysteresisGovernor(ScriptedPolicy(raw),
                                 down_confirmations=3)
        outputs = [gov.select_rate(0.1 * i) for i in range(len(raw))]
        assert all(out == 60 for out in outputs)
        assert gov.suppressed_downs > 0

    def test_down_candidate_tracks_highest_seen(self):
        # Confirmations at 20, 40, 40 should settle at 40, not 20.
        gov = HysteresisGovernor(ScriptedPolicy([60, 20, 40, 40]),
                                 down_confirmations=3)
        gov.select_rate(0.0)
        gov.select_rate(0.2)
        gov.select_rate(0.4)
        assert gov.select_rate(0.6) == 40

    def test_single_confirmation_reproduces_inner(self):
        raw = [60, 20, 40, 20, 60]
        plain = ScriptedPolicy(list(raw))
        gov = HysteresisGovernor(ScriptedPolicy(list(raw)),
                                 down_confirmations=1)
        for i in range(len(raw)):
            assert gov.select_rate(0.1 * i) == plain.select_rate(0.1 * i)

    def test_touch_boost_clears_pending_down(self):
        gov = HysteresisGovernor(
            ScriptedPolicy([60, 20, 20], touch_rate=60),
            down_confirmations=3)
        gov.select_rate(0.0)
        gov.select_rate(0.2)       # pending down x1
        assert gov.on_touch(0.3) == 60
        # The pending-down counter restarted: two more are needed.
        assert gov.select_rate(0.4) == 60

    def test_invalid_confirmations_rejected(self):
        with pytest.raises(ConfigurationError):
            HysteresisGovernor(ScriptedPolicy([60]),
                               down_confirmations=0)

    def test_name_composes(self):
        gov = HysteresisGovernor(ScriptedPolicy([60]))
        assert gov.name == "scripted+hysteresis"


class TestHysteresisEndToEnd:
    def test_reduces_rate_switches_at_similar_power(self):
        import repro
        plain = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=30.0, seed=5))
        damped = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="section+hysteresis",
            duration_s=30.0, seed=5))
        assert damped.panel.rate_switches <= plain.panel.rate_switches
        # Damping can only hold rates *higher* for longer, so power is
        # at most slightly above the plain policy's.
        p_plain = plain.power_report().mean_power_mw
        p_damped = damped.power_report().mean_power_mw
        assert p_damped >= p_plain - 1.0
        assert p_damped < p_plain * 1.15
