"""Tests for the OLED emission model and tracker."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphics.framebuffer import Framebuffer
from repro.power.oled import OledEmissionTracker, OledModel


def frame(value, shape=(12, 10, 3)):
    return np.full(shape, value, dtype=np.uint8)


class TestOledModel:
    def test_black_is_the_floor(self):
        model = OledModel()
        assert model.frame_power_mw(frame(0)) == pytest.approx(
            model.full_black_mw)

    def test_white_is_the_ceiling(self):
        model = OledModel()
        assert model.frame_power_mw(frame(255)) == pytest.approx(
            model.full_white_mw)

    def test_power_monotone_in_brightness(self):
        model = OledModel()
        powers = [model.frame_power_mw(frame(v))
                  for v in (0, 64, 128, 192, 255)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_blue_costs_more_than_red(self):
        model = OledModel()
        red = frame(0)
        red[:, :, 0] = 255
        blue = frame(0)
        blue[:, :, 2] = 255
        assert model.frame_power_mw(blue) > model.frame_power_mw(red)

    def test_gamma_makes_midtones_cheap(self):
        # At gamma 2.2, a 50 % grey emits ~22 % of full luminance.
        model = OledModel()
        mid = model.frame_power_mw(frame(128)) - model.full_black_mw
        full = model.full_white_mw - model.full_black_mw
        assert 0.15 < mid / full < 0.3

    def test_resolution_independent(self):
        model = OledModel()
        small = model.frame_power_mw(frame(200, shape=(8, 8, 3)))
        large = model.frame_power_mw(frame(200, shape=(64, 64, 3)))
        assert small == pytest.approx(large)

    def test_half_white_half_black_is_half_power(self):
        model = OledModel(base_mw=0.0)
        half = frame(0)
        half[:6] = 255
        assert model.frame_power_mw(half) == pytest.approx(
            model.full_white_mw / 2.0)

    def test_invalid_frame_rejected(self):
        model = OledModel()
        with pytest.raises(ConfigurationError):
            model.frame_power_mw(np.zeros((10, 10), dtype=np.uint8))

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            OledModel(full_channel_mw=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            OledModel(gamma=0.0)


class TestOledEmissionTracker:
    def test_tracks_frame_updates(self):
        fb = Framebuffer(10, 12)
        tracker = OledEmissionTracker(fb)
        assert tracker.history.current == pytest.approx(
            tracker.model.full_black_mw)
        fb.write(frame(255, fb.shape), 1.0)
        assert tracker.history.current == pytest.approx(
            tracker.model.full_white_mw)
        assert tracker.evaluations == 1

    def test_emission_holds_between_updates(self):
        fb = Framebuffer(10, 12)
        tracker = OledEmissionTracker(fb)
        fb.write(frame(255, fb.shape), 1.0)
        # Energy over [0, 3]: 1 s black + 2 s white.
        expected = (tracker.model.full_black_mw * 1.0 +
                    tracker.model.full_white_mw * 2.0)
        assert tracker.energy_mj(0.0, 3.0) == pytest.approx(expected)

    def test_mean_emission(self):
        fb = Framebuffer(10, 12)
        tracker = OledEmissionTracker(fb)
        fb.write(frame(255, fb.shape), 1.0)
        assert tracker.mean_emission_mw(1.0, 2.0) == pytest.approx(
            tracker.model.full_white_mw)

    def test_detach(self):
        fb = Framebuffer(10, 12)
        tracker = OledEmissionTracker(fb)
        tracker.detach()
        fb.write(frame(255, fb.shape), 1.0)
        assert tracker.evaluations == 0


class TestSessionIntegration:
    def test_emission_component_in_power_report(self):
        import repro
        result = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section+boost", duration_s=8.0,
            seed=1, track_oled=True))
        components = result.power_report().component_power_mw()
        assert components["emission"] > 0.0

    def test_emission_absent_without_tracking(self):
        import repro
        result = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section+boost", duration_s=8.0,
            seed=1))
        components = result.power_report().component_power_mw()
        assert components["emission"] == 0.0
        assert result.oled_tracker is None

    def test_refresh_control_does_not_change_emission(self):
        """Orthogonality: emission depends on displayed content, not
        the refresh rate — governed and fixed runs of the same workload
        emit (nearly) the same."""
        import repro
        fixed = repro.run_session(repro.SessionConfig(
            app="Cash Slide", governor="fixed", duration_s=20.0,
            seed=4, track_oled=True))
        governed = repro.run_session(repro.SessionConfig(
            app="Cash Slide", governor="section+boost", duration_s=20.0,
            seed=4, track_oled=True))
        e_fixed = fixed.oled_tracker.mean_emission_mw(0.0, 20.0)
        e_governed = governed.oled_tracker.mean_emission_mw(0.0, 20.0)
        assert e_governed == pytest.approx(e_fixed, rel=0.15)
