"""Tests for touch events, scripts, and the Monkey generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.inputs.monkey import MonkeyConfig, MonkeyScriptGenerator
from repro.inputs.touch import (
    TouchEvent,
    TouchKind,
    TouchScript,
    TouchSource,
    merge_scripts,
)
from repro.sim.engine import Simulator


class TestTouchEvent:
    def test_tap_has_zero_duration(self):
        e = TouchEvent(time=1.0)
        assert e.kind is TouchKind.TAP
        assert e.duration_s == 0.0

    def test_tap_with_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            TouchEvent(time=1.0, kind=TouchKind.TAP, duration_s=0.5)

    def test_scroll_with_duration(self):
        e = TouchEvent(time=1.0, kind=TouchKind.SCROLL, duration_s=0.8)
        assert e.duration_s == 0.8

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TouchEvent(time=-0.1)


class TestTouchScript:
    def _script(self):
        return TouchScript([
            TouchEvent(3.0),
            TouchEvent(1.0, kind=TouchKind.SCROLL, duration_s=0.5),
            TouchEvent(2.0),
        ])

    def test_sorted_by_time(self):
        script = self._script()
        assert script.times == (1.0, 2.0, 3.0)

    def test_len_iter_getitem(self):
        script = self._script()
        assert len(script) == 3
        assert [e.time for e in script] == [1.0, 2.0, 3.0]
        assert script[0].kind is TouchKind.SCROLL

    def test_within(self):
        script = self._script()
        assert script.within(1.5, 3.0).times == (2.0,)

    def test_kind_filters(self):
        script = self._script()
        assert len(script.taps()) == 2
        assert len(script.scrolls()) == 1

    def test_merge(self):
        a = TouchScript([TouchEvent(1.0)])
        b = TouchScript([TouchEvent(0.5)])
        merged = merge_scripts([a, b])
        assert merged.times == (0.5, 1.0)


class TestTouchSource:
    def test_events_delivered_at_scheduled_times(self):
        sim = Simulator()
        script = TouchScript([TouchEvent(1.0), TouchEvent(2.5)])
        source = TouchSource(sim, script)
        seen = []
        source.add_listener(lambda e: seen.append((sim.now, e.time)))
        source.start()
        sim.run_until(10.0)
        assert seen == [(1.0, 1.0), (2.5, 2.5)]
        assert source.delivered == 2

    def test_multiple_listeners(self):
        sim = Simulator()
        source = TouchSource(sim, TouchScript([TouchEvent(1.0)]))
        a, b = [], []
        source.add_listener(lambda e: a.append(e))
        source.add_listener(lambda e: b.append(e))
        source.start()
        sim.run_until(2.0)
        assert len(a) == len(b) == 1

    def test_double_start_rejected(self):
        sim = Simulator()
        source = TouchSource(sim, TouchScript([]))
        source.start()
        with pytest.raises(ConfigurationError):
            source.start()


class TestMonkeyConfig:
    def test_defaults_valid(self):
        MonkeyConfig()

    @pytest.mark.parametrize("kwargs", [
        {"duration_s": 0.0},
        {"events_per_s": -1.0},
        {"scroll_fraction": 1.5},
        {"scroll_duration_s": 0.0},
        {"min_gap_s": -0.1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MonkeyConfig(**kwargs)


class TestMonkeyScriptGenerator:
    def test_deterministic_per_seed(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=60.0,
                                                 events_per_s=0.5))
        a = gen.generate(seed=42)
        b = gen.generate(seed=42)
        assert a.times == b.times
        assert [e.kind for e in a] == [e.kind for e in b]

    def test_different_seeds_differ(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=120.0,
                                                 events_per_s=0.5))
        assert gen.generate(1).times != gen.generate(2).times

    def test_zero_rate_yields_empty_script(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(events_per_s=0.0))
        assert len(gen.generate(0)) == 0

    def test_events_within_duration(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=30.0,
                                                 events_per_s=1.0))
        script = gen.generate(7)
        assert all(0 <= e.time < 30.0 for e in script)
        for e in script.scrolls():
            assert e.time + e.duration_s <= 30.0 + 1e-9

    def test_warmup_respected(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=30.0,
                                                 events_per_s=5.0,
                                                 warmup_s=3.0))
        script = gen.generate(11)
        assert script.times[0] >= 3.0

    def test_min_gap_enforced(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=60.0,
                                                 events_per_s=50.0,
                                                 scroll_fraction=0.0,
                                                 min_gap_s=0.5))
        times = np.array(gen.generate(3).times)
        assert (np.diff(times) >= 0.5 - 1e-9).all()

    def test_mean_rate_statistically_close(self):
        cfg = MonkeyConfig(duration_s=100.0, events_per_s=0.3,
                           scroll_fraction=0.0, min_gap_s=0.0,
                           warmup_s=0.0)
        gen = MonkeyScriptGenerator(cfg)
        counts = [len(gen.generate(s)) for s in range(100)]
        assert 25.0 < np.mean(counts) < 35.0

    def test_scroll_fraction_statistically_close(self):
        cfg = MonkeyConfig(duration_s=200.0, events_per_s=0.5,
                           scroll_fraction=0.5, min_gap_s=0.0,
                           warmup_s=0.0)
        gen = MonkeyScriptGenerator(cfg)
        scripts = [gen.generate(s) for s in range(30)]
        taps = sum(len(s.taps()) for s in scripts)
        scrolls = sum(len(s.scrolls()) for s in scripts)
        frac = scrolls / (taps + scrolls)
        assert 0.4 < frac < 0.6

    def test_generate_many(self):
        gen = MonkeyScriptGenerator(MonkeyConfig(duration_s=20.0))
        scripts = gen.generate_many([1, 2, 3])
        assert len(scripts) == 3
