"""Executable checks for the docs/ code snippets.

Documentation that drifts from the code is worse than none; these
tests execute the behaviour each docs/api_tour.md snippet promises.
"""

import pathlib

import numpy as np
import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize("name", ["methodology.md",
                                      "calibration.md",
                                      "api_tour.md",
                                      "architecture.md",
                                      "traces.md",
                                      "caching.md"])
    def test_doc_present_and_substantial(self, name):
        path = REPO_ROOT / "docs" / name
        assert path.stat().st_size > 1500, name


class TestApiTourSnippets:
    def test_simulator_snippet(self):
        from repro import Simulator
        sim = Simulator()
        fired = []
        sim.call_after(1.5, lambda s: fired.append(s.now))
        sim.run_until(10.0)
        assert fired == [1.5]

    def test_graphics_snippet(self):
        from repro import Framebuffer, Surface, SurfaceManager
        from repro.graphics import ScrollRenderer
        fb = Framebuffer(width=90, height=160)
        compositor = SurfaceManager(fb)
        surface = Surface(90, 160, name="app")
        compositor.register_surface(surface)
        ScrollRenderer().render(surface, np.random.default_rng(0))
        compositor.post(surface)
        assert compositor.on_vsync(time=0.016)
        assert fb.generation == 1

    def test_table_snippet(self):
        from repro import GALAXY_S3_PANEL, SectionTable
        table = SectionTable.for_panel(GALAXY_S3_PANEL)
        assert table.lookup(33.0) == 40.0
        assert "20 Hz" in table.describe()

    def test_session_snippet(self):
        from repro import SessionConfig, run_session
        result = run_session(SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=5.0, seed=1, track_oled=True, status_bar=True))
        assert result.power_report().mean_power_mw > 0
        assert 0.0 <= result.quality_report().display_quality <= 1.0
        centers, power = result.power_trace(bin_width_s=1.0)
        assert len(centers) == 5

    def test_scenario_snippet(self):
        from repro import ScenarioConfig, ScenarioSegment, run_scenario
        scenario = run_scenario(ScenarioConfig(segments=(
            ScenarioSegment("KakaoTalk", 5.0),
            ScenarioSegment("Jelly Splash", 5.0),
        ), governor="section+boost", seed=1))
        assert scenario.segment_power(
            scenario.segments[1]).mean_power_mw > 0

    def test_batch_snippet(self):
        from repro import SessionConfig, run_batch
        summaries = run_batch(
            [SessionConfig(app="Facebook", governor="fixed",
                           duration_s=4.0, seed=s) for s in range(2)],
            processes=1)
        assert len(summaries) == 2

    def test_analysis_imports(self):
        from repro.analysis import (
            bar_chart,
            mean_std,
            percentile_of_apps,
            session_touch_latency,
            sparkline,
            timeline,
            write_session_json,
            write_trace_csv,
        )
        from repro.power import minutes_gained
        assert callable(minutes_gained)
        del (bar_chart, mean_std, percentile_of_apps,
             session_touch_latency, sparkline, timeline,
             write_session_json, write_trace_csv)

    def test_calibration_snippet(self):
        from repro import (
            PowerCalibration,
            PowerModel,
            SessionConfig,
            run_session,
        )
        my_cal = PowerCalibration(device_base_mw=600.0,
                                  panel_mw_per_hz=2.1,
                                  compose_mj_per_frame=0.8)
        model = PowerModel(my_cal)
        result = run_session(SessionConfig(app="Facebook",
                                           governor="section",
                                           duration_s=4.0, seed=1))
        default_power = result.power_report().mean_power_mw
        custom_power = result.power_report(model).mean_power_mw
        assert custom_power != default_power
