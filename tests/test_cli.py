"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_governor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "Facebook", "--governor", "psychic"])

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "Facebook", "--panel", "crt"])


class TestApps:
    def test_lists_all_thirty(self, capsys):
        code, out = run_cli(capsys, "apps")
        assert code == 0
        assert "Facebook" in out
        assert "Jelly Splash" in out
        assert out.count("general") >= 15
        assert out.count("game") >= 15


class TestTable:
    def test_galaxy_s3_table(self, capsys):
        code, out = run_cli(capsys, "table", "--panel", "galaxy-s3")
        assert code == 0
        assert "[0, 10) fps -> 20 Hz" in out
        assert "[35, inf) fps -> 60 Hz" in out

    def test_custom_rates(self, capsys):
        code, out = run_cli(capsys, "table", "--rates", "30,60,120")
        assert code == 0
        assert "30 Hz" in out and "120 Hz" in out
        # First threshold is r1/2 = 15.
        assert "[0, 15)" in out

    def test_invalid_custom_rates_exit_code(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "--rates", "60,60"])


class TestRun:
    def test_run_summary(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "6", "--seed", "2")
        assert code == 0
        assert "mean power:" in out
        assert "mean refresh:" in out
        assert "Facebook" in out

    def test_run_with_oled(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "6", "--oled")
        assert code == 0
        assert "emission" in out

    def test_unknown_app_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "Nonexistent", "--duration", "5"])


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(capsys, "compare", "--app", "Facebook",
                            "--duration", "8",
                            "--governors", "section")
        assert code == 0
        assert "fixed" in out
        assert "section" in out
        assert "saved mW" in out


class TestExperiment:
    def test_listing(self, capsys):
        code, out = run_cli(capsys, "experiment")
        assert code == 0
        for experiment_id in ("fig2", "fig6", "table1"):
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExport:
    def test_writes_three_files(self, capsys, tmp_path):
        prefix = str(tmp_path / "session")
        code, out = run_cli(capsys, "export", "--app", "Facebook",
                            "--duration", "6", "--out", prefix)
        assert code == 0
        assert (tmp_path / "session.json").exists()
        assert (tmp_path / "session_trace.csv").exists()
        assert (tmp_path / "session_events.csv").exists()


class TestScenario:
    def test_scenario_table(self, capsys):
        code, out = run_cli(capsys, "scenario",
                            "--apps", "KakaoTalk,Facebook",
                            "--segment-duration", "8")
        assert code == 0
        assert "KakaoTalk" in out and "Facebook" in out
        assert "total:" in out

    def test_oracle_not_offered(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "--apps", "Facebook",
                 "--governor", "oracle"])


class TestTelemetryCli:
    def test_run_with_telemetry_writes_stream(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "10",
                            "--telemetry", str(path))
        assert code == 0
        assert "telemetry:" in out
        assert path.exists()
        lines = [line for line in path.read_text().splitlines() if line]
        assert lines, "stream must not be empty"

    def test_stats_summarizes_stream(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        run_cli(capsys, "run", "--app", "Facebook",
                "--duration", "10", "--telemetry", str(path))
        code, out = run_cli(capsys, "stats", str(path))
        assert code == 0
        assert "rate switches:" in out
        assert "touch boosts:" in out
        assert "span" in out

    def test_stats_rejects_garbage(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])

    def test_stats_missing_file_exits_with_error(self, capsys,
                                                 tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "absent.jsonl" in err

    def test_run_without_telemetry_prints_no_telemetry_line(
            self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "5")
        assert code == 0
        assert "telemetry:" not in out
