"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_governor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "Facebook", "--governor", "psychic"])

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "Facebook", "--panel", "crt"])


class TestApps:
    def test_lists_all_thirty(self, capsys):
        code, out = run_cli(capsys, "apps")
        assert code == 0
        assert "Facebook" in out
        assert "Jelly Splash" in out
        assert out.count("general") >= 15
        assert out.count("game") >= 15


class TestTable:
    def test_galaxy_s3_table(self, capsys):
        code, out = run_cli(capsys, "table", "--panel", "galaxy-s3")
        assert code == 0
        assert "[0, 10) fps -> 20 Hz" in out
        assert "[35, inf) fps -> 60 Hz" in out

    def test_custom_rates(self, capsys):
        code, out = run_cli(capsys, "table", "--rates", "30,60,120")
        assert code == 0
        assert "30 Hz" in out and "120 Hz" in out
        # First threshold is r1/2 = 15.
        assert "[0, 15)" in out

    def test_invalid_custom_rates_exit_code(self, capsys):
        with pytest.raises(SystemExit):
            main(["table", "--rates", "60,60"])


class TestRun:
    def test_run_summary(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "6", "--seed", "2")
        assert code == 0
        assert "mean power:" in out
        assert "mean refresh:" in out
        assert "Facebook" in out

    def test_run_with_oled(self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "6", "--oled")
        assert code == 0
        assert "emission" in out

    def test_unknown_app_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--app", "Nonexistent", "--duration", "5"])


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(capsys, "compare", "--app", "Facebook",
                            "--duration", "8",
                            "--governors", "section")
        assert code == 0
        assert "fixed" in out
        assert "section" in out
        assert "saved mW" in out


class TestExperiment:
    def test_listing(self, capsys):
        code, out = run_cli(capsys, "experiment")
        assert code == 0
        for experiment_id in ("fig2", "fig6", "table1"):
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestExport:
    def test_writes_three_files(self, capsys, tmp_path):
        prefix = str(tmp_path / "session")
        code, out = run_cli(capsys, "export", "--app", "Facebook",
                            "--duration", "6", "--out", prefix)
        assert code == 0
        assert (tmp_path / "session.json").exists()
        assert (tmp_path / "session_trace.csv").exists()
        assert (tmp_path / "session_events.csv").exists()


class TestScenario:
    def test_scenario_table(self, capsys):
        code, out = run_cli(capsys, "scenario",
                            "--apps", "KakaoTalk,Facebook",
                            "--segment-duration", "8")
        assert code == 0
        assert "KakaoTalk" in out and "Facebook" in out
        assert "total:" in out

    def test_oracle_not_offered(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["scenario", "--apps", "Facebook",
                 "--governor", "oracle"])


class TestTelemetryCli:
    def test_run_with_telemetry_writes_stream(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "10",
                            "--telemetry", str(path))
        assert code == 0
        assert "telemetry:" in out
        assert path.exists()
        lines = [line for line in path.read_text().splitlines() if line]
        assert lines, "stream must not be empty"

    def test_stats_summarizes_stream(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        run_cli(capsys, "run", "--app", "Facebook",
                "--duration", "10", "--telemetry", str(path))
        code, out = run_cli(capsys, "stats", str(path))
        assert code == 0
        assert "rate switches:" in out
        assert "touch boosts:" in out
        assert "span" in out

    def test_stats_rejects_garbage(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])

    def test_stats_missing_file_exits_with_error(self, capsys,
                                                 tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", str(tmp_path / "absent.jsonl")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "absent.jsonl" in err

    def test_run_without_telemetry_prints_no_telemetry_line(
            self, capsys):
        code, out = run_cli(capsys, "run", "--app", "Facebook",
                            "--duration", "5")
        assert code == 0
        assert "telemetry:" not in out


class TestTraceCli:
    def test_gen_info_replay_round_trip(self, capsys, tmp_path):
        path = str(tmp_path / "idle.rptrace")
        code, out = run_cli(capsys, "trace", "gen", "--kind", "idle",
                            "--duration", "5", "--out", path)
        assert code == 0
        assert "generated idle trace" in out

        code, out = run_cli(capsys, "trace", "info", path)
        assert code == 0
        assert "repro-trace/1" in out
        assert "synthetic:idle" in out

        summary_path = tmp_path / "summary.json"
        code, out = run_cli(capsys, "trace", "replay", path,
                            "--summary-json", str(summary_path))
        assert code == 0
        assert "mean power:" in out
        import json as json_module
        summary = json_module.loads(summary_path.read_text())
        assert summary["app"] == "trace-idle"

    def test_record_then_replay(self, capsys, tmp_path):
        path = str(tmp_path / "fb.rptrace")
        code, out = run_cli(capsys, "trace", "record",
                            "--app", "Facebook", "--duration", "5",
                            "--seed", "2", "--out", path)
        assert code == 0
        assert "recorded" in out

        code, out = run_cli(capsys, "trace", "replay", path,
                            "--governor", "section")
        assert code == 0
        assert "section-based" in out

    def test_info_missing_file_exits_two(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "info", str(tmp_path / "nope.rptrace")])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope.rptrace" in err

    def test_info_corrupt_file_exits_two(self, capsys, tmp_path):
        path = tmp_path / "garbage.rptrace"
        path.write_bytes(b"REPROTRC" + b"\x00" * 20)
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "info", str(path)])
        assert excinfo.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_replay_unknown_governor_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "replay", "x.rptrace",
                 "--governor", "psychic"])

    def test_gen_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["trace", "gen", "--kind", "fire", "--out", "x"])


class TestErrorPaths:
    def test_non_numeric_rates_exit_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table", "--rates", "30,abc"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "comma-separated" in err

    def test_bench_missing_baseline_exits_two(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--fast", "--workers", "1",
                  "--check", str(tmp_path / "absent.json")])
        assert excinfo.value.code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bench_malformed_baseline_exits_two(self, capsys,
                                                tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--fast", "--workers", "1",
                  "--check", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err
