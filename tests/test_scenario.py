"""Tests for multi-application usage scenarios."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.scenario import (
    ScenarioConfig,
    ScenarioSegment,
    run_scenario,
)


def three_segment_config(governor="section+boost", seed=3,
                         duration=12.0):
    return ScenarioConfig(segments=(
        ScenarioSegment("KakaoTalk", duration),
        ScenarioSegment("Jelly Splash", duration),
        ScenarioSegment("Facebook", duration),
    ), governor=governor, seed=seed)


class TestScenarioConfig:
    def test_total_duration(self):
        assert three_segment_config().total_duration_s == 36.0

    def test_boundaries(self):
        bounds = three_segment_config().boundaries()
        assert bounds == [(0.0, 12.0), (12.0, 24.0), (24.0, 36.0)]

    def test_empty_segments_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(segments=())

    def test_oracle_rejected(self):
        with pytest.raises(ConfigurationError):
            three_segment_config(governor="oracle")

    def test_invalid_segment_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSegment("Facebook", 0.0)

    def test_profile_segment_accepted(self):
        from repro.apps.catalog import app_profile
        seg = ScenarioSegment(app_profile("Facebook"), 5.0)
        assert seg.resolve_profile().name == "Facebook"


class TestScenarioRun:
    @pytest.fixture(scope="class")
    def pair(self):
        base = run_scenario(three_segment_config(governor="fixed"))
        governed = run_scenario(three_segment_config())
        return base, governed

    def test_all_segments_ran(self, pair):
        _, governed = pair
        for segment in governed.segments:
            assert segment.application.started
            assert len(segment.application.submissions) > 0

    def test_segment_activity_confined_to_window(self, pair):
        _, governed = pair
        for segment in governed.segments:
            times = segment.application.submissions.times
            assert times.min() >= segment.start_s
            assert times.max() <= segment.end_s + 1e-6

    def test_scenario_saves_power(self, pair):
        base, governed = pair
        assert governed.power_report().mean_power_mw < \
            base.power_report().mean_power_mw

    def test_game_segment_saves_most(self, pair):
        base, governed = pair
        savings = []
        for i in range(3):
            b = base.segment_power(base.segments[i]).mean_power_mw
            g = governed.segment_power(governed.segments[i]).mean_power_mw
            savings.append(b - g)
        # Segment 1 is Jelly Splash (the free-running game).
        assert savings[1] == max(savings)

    def test_segment_power_sums_to_total(self, pair):
        _, governed = pair
        total = governed.power_report()
        summed = sum(
            governed.segment_power(s).energy_mj
            for s in governed.segments)
        assert summed == pytest.approx(total.energy_mj)

    def test_quality_per_segment(self, pair):
        base, governed = pair
        for i in range(3):
            q = governed.segment_quality(i, base)
            assert 0.5 <= q <= 1.0

    def test_launch_transitions_are_meaningful_frames(self, pair):
        _, governed = pair
        # Each segment switch repaints the screen: at least one
        # meaningful composition lands right after each boundary.
        for segment in governed.segments:
            count = governed.meaningful_compositions.count_in(
                segment.start_s, segment.start_s + 0.5)
            assert count >= 1

    def test_governor_adapts_across_segments(self, pair):
        _, governed = pair
        # Mean refresh during the game segment exceeds the messenger
        # segment's (the game's content and loop demand more).
        messenger = governed.panel.rate_history.mean(2.0, 12.0)
        game = governed.panel.rate_history.mean(14.0, 24.0)
        assert game > messenger

    def test_determinism(self):
        a = run_scenario(three_segment_config(seed=9, duration=6.0))
        b = run_scenario(three_segment_config(seed=9, duration=6.0))
        assert a.power_report().energy_mj == \
            b.power_report().energy_mj

    def test_workload_identical_across_governors(self):
        base = run_scenario(three_segment_config(governor="fixed",
                                                 seed=5, duration=6.0))
        governed = run_scenario(three_segment_config(seed=5,
                                                     duration=6.0))
        for sa, sb in zip(base.segments, governed.segments):
            assert list(sa.application.content_changes.times) == \
                list(sb.application.content_changes.times)
        assert base.touch_script.times == governed.touch_script.times
