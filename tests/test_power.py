"""Tests for the power model, calibration, and Monsoon emulation."""

import numpy as np
import pytest

from repro.apps.catalog import app_profile
from repro.errors import ConfigurationError
from repro.power.calibration import PowerCalibration, galaxy_s3_calibration
from repro.power.meter import MonsoonMeter
from repro.power.model import PowerModel
from repro.sim.tracing import EventLog, StepSeries


def make_logs(frame_times, render_times=None):
    compositions = EventLog("compositions")
    for t in frame_times:
        compositions.append(t)
    renders = EventLog("renders")
    for t in (render_times if render_times is not None else frame_times):
        renders.append(t)
    return compositions, renders


class TestCalibration:
    def test_defaults(self):
        cal = galaxy_s3_calibration()
        assert cal.panel_mw_per_hz == pytest.approx(3.5)
        assert cal.device_base_mw > 0

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerCalibration(panel_mw_per_hz=-1.0)


class TestPowerModel:
    def setup_method(self):
        self.model = PowerModel()
        self.profile = app_profile("Facebook")

    def test_base_plus_panel_for_idle_session(self):
        rate = StepSeries(initial=60.0)
        compositions, renders = make_logs([])
        report = self.model.evaluate(self.profile, rate, compositions,
                                     renders, duration_s=10.0)
        cal = self.model.calibration
        expected = (cal.device_base_mw + self.profile.cpu_base_mw +
                    cal.panel_mw_per_hz * 60.0)
        assert report.mean_power_mw == pytest.approx(expected)

    def test_panel_component_scales_with_rate(self):
        compositions, renders = make_logs([])
        r60 = self.model.evaluate(self.profile, StepSeries(initial=60.0),
                                  compositions, renders, 10.0)
        r20 = self.model.evaluate(self.profile, StepSeries(initial=20.0),
                                  compositions, renders, 10.0)
        saved = r60.mean_power_mw - r20.mean_power_mw
        assert saved == pytest.approx(3.5 * 40.0)

    def test_compose_and_render_energy_per_frame(self):
        rate = StepSeries(initial=60.0)
        compositions, renders = make_logs([0.1 * i for i in range(1, 101)])
        report = self.model.evaluate(self.profile, rate, compositions,
                                     renders, duration_s=10.0)
        cal = self.model.calibration
        assert report.breakdown.compose_mj == pytest.approx(
            100 * cal.compose_mj_per_frame)
        assert report.breakdown.render_mj == pytest.approx(
            100 * self.profile.render_cost_mj)

    def test_meter_overhead_only_when_active(self):
        rate = StepSeries(initial=60.0)
        compositions, renders = make_logs([0.5, 1.5])
        passive = self.model.evaluate(self.profile, rate, compositions,
                                      renders, 10.0,
                                      metering_active=False)
        active = self.model.evaluate(self.profile, rate, compositions,
                                     renders, 10.0, metering_active=True)
        assert passive.breakdown.meter_mj == 0.0
        assert active.breakdown.meter_mj > 0.0
        assert active.energy_mj > passive.energy_mj

    def test_rate_switch_integrated_exactly(self):
        rate = StepSeries(initial=60.0)
        rate.set(5.0, 20.0)
        compositions, renders = make_logs([])
        report = self.model.evaluate(self.profile, rate, compositions,
                                     renders, 10.0)
        panel_mj = report.breakdown.panel_mj
        assert panel_mj == pytest.approx(3.5 * (60.0 * 5 + 20.0 * 5))

    def test_component_power_sums_to_total(self):
        rate = StepSeries(initial=40.0)
        compositions, renders = make_logs([1.0, 2.0, 3.0])
        report = self.model.evaluate(self.profile, rate, compositions,
                                     renders, 10.0, metering_active=True)
        components = report.component_power_mw()
        assert sum(components.values()) == pytest.approx(
            report.mean_power_mw)

    def test_games_cost_more_than_general(self):
        rate = StepSeries(initial=60.0)
        frames = [i / 60.0 for i in range(1, 601)]
        compositions, renders = make_logs(frames)
        general = self.model.evaluate(app_profile("Facebook"), rate,
                                      compositions, renders, 10.0)
        game = self.model.evaluate(app_profile("Jelly Splash"), rate,
                                   compositions, renders, 10.0)
        assert game.mean_power_mw > general.mean_power_mw

    def test_invalid_duration_rejected(self):
        rate = StepSeries(initial=60.0)
        compositions, renders = make_logs([])
        with pytest.raises(ConfigurationError):
            self.model.evaluate(self.profile, rate, compositions,
                                renders, 0.0)


class TestPowerTrace:
    def test_trace_shape_and_mean_consistency(self):
        model = PowerModel()
        profile = app_profile("Facebook")
        rate = StepSeries(initial=60.0)
        rate.set(5.0, 20.0)
        compositions, renders = make_logs(
            [0.5 + i for i in range(10)])
        centers, power = model.power_trace(profile, rate, compositions,
                                           renders, duration_s=10.0)
        assert len(centers) == 10
        report = model.evaluate(profile, rate, compositions, renders,
                                10.0)
        assert float(np.mean(power)) == pytest.approx(
            report.mean_power_mw, rel=1e-6)

    def test_trace_reflects_rate_drop(self):
        model = PowerModel()
        profile = app_profile("Facebook")
        rate = StepSeries(initial=60.0)
        rate.set(5.0, 20.0)
        compositions, renders = make_logs([])
        _, power = model.power_trace(profile, rate, compositions,
                                     renders, 10.0)
        assert power[0] > power[-1]
        assert power[0] - power[-1] == pytest.approx(3.5 * 40.0)

    def test_bin_width_larger_than_duration_rejected(self):
        model = PowerModel()
        profile = app_profile("Facebook")
        compositions, renders = make_logs([])
        with pytest.raises(ConfigurationError):
            model.power_trace(profile, StepSeries(initial=60.0),
                              compositions, renders, 5.0,
                              bin_width_s=10.0)


class TestMonsoonMeter:
    def test_noise_is_seeded(self):
        times = np.arange(10.0)
        power = np.full(10, 500.0)
        a = MonsoonMeter(noise_mw=5.0, seed=1).measure_trace(times, power)
        b = MonsoonMeter(noise_mw=5.0, seed=1).measure_trace(times, power)
        assert np.array_equal(a[1], b[1])

    def test_noise_statistics(self):
        times = np.arange(10_000.0)
        power = np.full(10_000, 500.0)
        _, noisy = MonsoonMeter(noise_mw=5.0, seed=2).measure_trace(
            times, power)
        assert abs(noisy.mean() - 500.0) < 1.0
        assert 4.0 < noisy.std() < 6.0

    def test_never_negative(self):
        times = np.arange(1000.0)
        power = np.full(1000, 1.0)
        _, noisy = MonsoonMeter(noise_mw=50.0, seed=3).measure_trace(
            times, power)
        assert (noisy >= 0.0).all()

    def test_zero_noise_is_exact(self):
        times = np.arange(5.0)
        power = np.linspace(100, 200, 5)
        _, noisy = MonsoonMeter(noise_mw=0.0).measure_trace(times, power)
        assert np.array_equal(noisy, power)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MonsoonMeter().measure_trace(np.arange(3.0), np.arange(4.0))

    def test_measure_mean_averages_down_noise(self):
        meter = MonsoonMeter(noise_mw=10.0, seed=4)
        readings = [meter.measure_mean(500.0, samples=10_000)
                    for _ in range(100)]
        assert abs(np.mean(readings) - 500.0) < 0.5

    def test_measure_mean_invalid_samples(self):
        with pytest.raises(ValueError):
            MonsoonMeter().measure_mean(500.0, samples=0)
