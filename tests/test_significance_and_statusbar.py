"""Tests for the significance filter and the status-bar session option."""

import numpy as np
import pytest

import repro
from repro.core.content_rate import ContentRateMeter, MeterConfig
from repro.core.grid import GridComparator, GridSpec
from repro.errors import ConfigurationError
from repro.graphics.framebuffer import Framebuffer


class TestCountChanged:
    def _frames(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 256, size=(100, 100, 3), dtype=np.uint8)
        return a, a.copy()

    def test_zero_for_equal_frames(self):
        a, b = self._frames()
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        assert comp.count_changed(a, b) == 0

    def test_counts_cells_not_pixels(self):
        a, b = self._frames()
        grid = GridSpec((100, 100), 10, 10)
        comp = GridComparator(grid)
        # Change exactly two sample points.
        a[5, 5] = 255 - a[5, 5]
        a[15, 25] = 255 - a[15, 25]
        assert comp.count_changed(a, b) == 2

    def test_full_frame_change_counts_most_cells(self):
        a, b = self._frames()
        a[:] = 255 - a
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        assert comp.count_changed(a, b) > 90

    def test_sampled_previous_supported(self):
        a, b = self._frames()
        grid = GridSpec((100, 100), 10, 10)
        comp = GridComparator(grid)
        prev = grid.sample(b)
        a[5, 5] = 255 - a[5, 5]
        assert comp.count_changed(a, prev) == 1

    def test_consistent_with_frames_equal(self):
        a, b = self._frames()
        grid = GridSpec((100, 100), 10, 10)
        comp = GridComparator(grid)
        assert (comp.count_changed(a, b) == 0) == comp.frames_equal(a, b)
        a[5, 5] = 255 - a[5, 5]
        assert (comp.count_changed(a, b) == 0) == comp.frames_equal(a, b)

    def test_bad_previous_shape_rejected(self):
        from repro.errors import MeteringError
        a, _ = self._frames()
        comp = GridComparator(GridSpec((100, 100), 10, 10))
        with pytest.raises(MeteringError):
            comp.count_changed(a, np.zeros((3, 3, 3), dtype=np.uint8))


class TestSignificanceFilter:
    def _meter(self, min_cells):
        fb = Framebuffer(100, 100)
        meter = ContentRateMeter(
            fb, MeterConfig(sample_count=100,
                            min_changed_cells=min_cells))
        return fb, meter

    def test_default_counts_any_change(self):
        fb, meter = self._meter(1)
        base = np.full(fb.shape, 40, dtype=np.uint8)
        fb.write(base, 0.1)
        tweaked = base.copy()
        tweaked[5, 5] = 200  # exactly one sample point
        fb.write(tweaked, 0.2)
        assert meter.total_meaningful == 2

    def test_threshold_ignores_tiny_changes(self):
        fb, meter = self._meter(3)
        base = np.full(fb.shape, 40, dtype=np.uint8)
        fb.write(base, 0.1)  # full repaint: meaningful
        tweaked = base.copy()
        tweaked[5, 5] = 200  # one changed cell < threshold of 3
        fb.write(tweaked, 0.2)
        assert meter.total_meaningful == 1

    def test_threshold_passes_large_changes(self):
        fb, meter = self._meter(3)
        base = np.full(fb.shape, 40, dtype=np.uint8)
        fb.write(base, 0.1)
        fb.write(np.full(fb.shape, 200, dtype=np.uint8), 0.2)
        assert meter.total_meaningful == 2

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            MeterConfig(min_changed_cells=0)


class TestStatusBarOption:
    def test_status_bar_generates_overlay_content(self):
        result = repro.run_session(repro.SessionConfig(
            app="Tiny Flashlight", governor="fixed", duration_s=10.0,
            seed=2, status_bar=True))
        assert result.status_bar_app is not None
        # A 1 Hz periodic clock produced ~10 ticks.
        assert len(result.status_bar_app.content_changes) == \
            pytest.approx(10, abs=1)

    def test_status_bar_raises_displayed_content(self):
        plain = repro.run_session(repro.SessionConfig(
            app="Tiny Flashlight", governor="fixed", duration_s=15.0,
            seed=2))
        with_bar = repro.run_session(repro.SessionConfig(
            app="Tiny Flashlight", governor="fixed", duration_s=15.0,
            seed=2, status_bar=True))
        assert with_bar.mean_content_rate_fps > \
            plain.mean_content_rate_fps

    def test_status_bar_absent_by_default(self):
        result = repro.run_session(repro.SessionConfig(
            app="Tiny Flashlight", governor="fixed", duration_s=5.0,
            seed=2))
        assert result.status_bar_app is None

    def test_overlay_composites_above_app(self):
        result = repro.run_session(repro.SessionConfig(
            app="Tiny Flashlight", governor="fixed", duration_s=10.0,
            seed=2, status_bar=True))
        bar = result.status_bar_app.surface
        assert bar.z_order > result.application.surface.z_order

    def test_governed_session_with_bar_still_saves(self):
        base = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="fixed", duration_s=15.0,
            seed=2, status_bar=True))
        governed = repro.run_session(repro.SessionConfig(
            app="Facebook", governor="section+boost", duration_s=15.0,
            seed=2, status_bar=True))
        assert governed.power_report().mean_power_mw < \
            base.power_report().mean_power_mw
