"""Tests for the durable session service (`repro.service`).

Covers the building blocks bottom-up — atomic writes and tolerant
JSONL reads (`repro.ioutil`), the append-only journal, the circuit
breaker — then the service itself run in-process with ``until_idle``:
correct byte-identical summaries, structured failure records, retry
exhaustion, breaker shedding, deadlines, park-on-shutdown and resume.

Byte-identity assertions always compare against an uninterrupted
in-process :func:`run_session` of the same spec; configs stay
untelemetered because telemetry spans carry wall-clock time.
"""

import asyncio
import json

import pytest

from repro.analysis.export import json_sanitize
from repro.errors import (
    JournalError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.ioutil import (
    append_jsonl_line,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)
from repro.pipeline.spec import SessionSpec
from repro.service import (
    BreakerState,
    CircuitBreaker,
    JobRequest,
    JobStatus,
    Journal,
    ServiceConfig,
    ServicePaths,
    SessionService,
    read_journal,
    submit_job,
)
from repro.service.jobs import load_result, write_result
from repro.service.service import (
    backoff_delay_s,
    job_id_for_spec,
    next_submit_seq,
    request_drain,
    request_stop,
    service_status,
)
from repro.sim.batch import summarize_result
from repro.sim.session import SessionConfig, run_session


def _spec(app="Jelly Splash", duration_s=2.0, seed=0, **kw):
    return SessionSpec.from_config(SessionConfig(
        app=app, governor="section+boost", duration_s=duration_s,
        seed=seed, **kw))


def _job(job_id, spec, seq=0, deadline_s=None):
    return JobRequest(job_id=job_id, spec=spec.to_json_dict(),
                      deadline_s=deadline_s, submitted_seq=seq)


def _expected_summary_bytes(spec):
    summary = json_sanitize(summarize_result(run_session(spec.to_config())))
    return json.dumps(summary, sort_keys=True)


def _serve(state_dir, **overrides):
    """Run a service in-process until idle; returns its exit summary."""
    defaults = dict(state_dir=str(state_dir), workers=2,
                    slice_sleep_s=0.0, fsync_journal=False,
                    until_idle=True, max_runtime_s=120.0)
    defaults.update(overrides)
    service = SessionService(ServiceConfig(**defaults))
    return asyncio.run(service.serve())


# ----------------------------------------------------------------------
# ioutil
# ----------------------------------------------------------------------

class TestAtomicWrites:
    def test_atomic_json_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"a": 1, "b": [2, 3]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [2, 3]}

    def test_no_temp_file_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "x.txt", "hello")
        assert [p.name for p in tmp_path.iterdir()] == ["x.txt"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_nan_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            atomic_write_json(tmp_path / "bad.json", {"x": float("nan")})


class TestJsonlReader:
    def test_missing_file_is_empty(self, tmp_path):
        result = read_jsonl(tmp_path / "nope.jsonl")
        assert result.records == []
        assert not result.damaged

    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with path.open("a") as handle:
            append_jsonl_line(handle, {"n": 1}, fsync=False)
            append_jsonl_line(handle, {"n": 2}, fsync=False)
        result = read_jsonl(path)
        assert [r["n"] for r in result.records] == [1, 2]
        assert not result.damaged

    def test_torn_tail_detected_and_tolerated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n{"n": 3')
        result = read_jsonl(path)
        assert [r["n"] for r in result.records] == [1, 2]
        assert result.torn_tail
        assert result.damaged

    def test_missing_trailing_newline_counts_as_torn(self, tmp_path):
        # A decoded record whose newline never hit disk is kept (the
        # content survived) but the tail is still flagged as torn.
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}')
        result = read_jsonl(path)
        assert [r["n"] for r in result.records] == [1, 2]
        assert result.torn_tail

    def test_mid_file_garbage_counted_not_fatal(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\nGARBAGE\n{"n": 3}\n')
        result = read_jsonl(path)
        assert [r["n"] for r in result.records] == [1, 3]
        assert result.bad_lines == 1
        assert result.bad_line_numbers == [2]
        assert not result.torn_tail


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------

class TestJournal:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path, fsync=False)
        journal.append("service_start", workers=2)
        journal.append("job_ingested", job_id="j1")
        journal.close()
        state = read_journal(path)
        assert state.count("service_start") == 1
        assert state.count("job_ingested", job_id="j1") == 1
        assert [r["seq"] for r in state.records] == [0, 1]

    def test_seq_continues_across_incarnations(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = Journal(path, fsync=False)
        first.append("service_start")
        first.close()
        second = Journal(path, fsync=False)
        record = second.append("service_start")
        second.close()
        assert record["seq"] == 1

    def test_unknown_op_rejected(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl", fsync=False)
        with pytest.raises(JournalError):
            journal.append("not_a_real_op")
        journal.close()

    def test_torn_tail_does_not_lose_prior_records(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path, fsync=False)
        journal.append("service_start")
        journal.append("job_ingested", job_id="j1")
        journal.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        state = read_journal(path)
        assert state.count("service_start") == 1
        assert state.damage.damaged

    def test_reopen_heals_torn_tail_before_appending(self, tmp_path):
        # A torn final line must cost exactly one record: the next
        # incarnation's appends land on a fresh line, not welded onto
        # the torn garbage.
        path = tmp_path / "journal.jsonl"
        first = Journal(path, fsync=False)
        first.append("service_start")
        first.append("job_ingested", job_id="j1")
        first.close()
        path.write_bytes(path.read_bytes()[:-5])
        second = Journal(path, fsync=False)
        second.append("service_start")
        second.close()
        state = read_journal(path)
        assert state.count("service_start") == 2
        assert state.bad_lines == 1
        assert not state.torn_tail

    def test_ops_for_filters_by_job(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path, fsync=False)
        journal.append("job_ingested", job_id="a")
        journal.append("job_ingested", job_id="b")
        journal.append("job_done", job_id="a")
        journal.close()
        state = read_journal(path)
        assert [r["op"] for r in state.ops_for("a")] == \
            ["job_ingested", "job_done"]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2,
                                 clock=_FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BreakerState.CLOSED

    def test_half_open_allows_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.1
        assert breaker.state == BreakerState.HALF_OPEN
        assert breaker.allow()
        assert not breaker.allow()

    def test_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BreakerState.OPEN
        assert breaker.trips == 2


# ----------------------------------------------------------------------
# Jobs, results, spool
# ----------------------------------------------------------------------

class TestJobsAndResults:
    def test_job_request_round_trip(self):
        job = _job("j1", _spec(), seq=3, deadline_s=9.0)
        assert JobRequest.from_json_dict(job.to_json_dict()) == job

    def test_unknown_key_rejected(self):
        doc = _job("j1", _spec()).to_json_dict()
        doc["surprise"] = True
        with pytest.raises(ServiceError):
            JobRequest.from_json_dict(doc)

    def test_bad_job_id_rejected(self):
        for bad in ("", ".hidden", "a/b", "x" * 101):
            with pytest.raises(ServiceError):
                _job(bad, _spec())

    def test_write_result_is_write_once(self, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        first = write_result(paths, "j1", JobStatus.DONE,
                             {"summary": {"v": 1}})
        second = write_result(paths, "j1", JobStatus.FAILED,
                              {"failure": {}})
        assert first is not None
        assert second is None
        assert load_result(paths, "j1")["summary"] == {"v": 1}

    def test_corrupt_result_raises(self, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        paths.result_path("j1").write_text("{broken")
        with pytest.raises(ServiceError):
            load_result(paths, "j1")

    def test_submit_refuses_duplicates(self, tmp_path):
        job = _job("dup", _spec())
        submit_job(tmp_path, job)
        with pytest.raises(ServiceError):
            submit_job(tmp_path, job)

    def test_submit_refuses_finished_job_id(self, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        write_result(paths, "done-job", JobStatus.DONE,
                     {"summary": {}})
        with pytest.raises(ServiceError):
            submit_job(tmp_path, _job("done-job", _spec()))

    def test_submit_seq_monotonic(self, tmp_path):
        assert next_submit_seq(tmp_path) == 0
        submit_job(tmp_path, _job("a", _spec(), seq=0))
        assert next_submit_seq(tmp_path) == 1

    def test_job_id_for_spec_is_content_addressed(self):
        spec = _spec()
        a = job_id_for_spec(spec.to_json_dict())
        b = job_id_for_spec(spec.to_json_dict())
        c = job_id_for_spec(_spec(seed=7).to_json_dict())
        assert a == b
        assert a != c
        assert a.startswith("job-")

    def test_backoff_is_exponential_and_capped(self):
        delays = [backoff_delay_s(n, 0.1, 1.0) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.0]


# ----------------------------------------------------------------------
# The service, in process
# ----------------------------------------------------------------------

class TestServiceRuns:
    def test_jobs_complete_with_byte_identical_summaries(self, tmp_path):
        specs = {"j0": _spec(seed=0), "j1": _spec(seed=1)}
        for seq, (job_id, spec) in enumerate(sorted(specs.items())):
            submit_job(tmp_path, _job(job_id, spec, seq=seq))
        exit_summary = _serve(tmp_path)
        assert exit_summary["jobs"]["done"] == 2
        paths = ServicePaths(tmp_path)
        for job_id, spec in specs.items():
            result = load_result(paths, job_id)
            assert result["status"] == JobStatus.DONE
            assert json.dumps(result["summary"], sort_keys=True) == \
                _expected_summary_bytes(spec)

    def test_bad_spec_fails_with_structured_record(self, tmp_path):
        doc = _spec().to_json_dict()
        doc["app"] = "NoSuchAppAnywhere"
        submit_job(tmp_path, JobRequest(
            job_id="bad", spec=doc, deadline_s=None, submitted_seq=0))
        exit_summary = _serve(tmp_path, max_attempts=1)
        assert exit_summary["jobs"]["failed"] == 1
        result = load_result(ServicePaths(tmp_path), "bad")
        assert result["status"] == JobStatus.FAILED
        assert result["failure"]["error_type"] == "WorkloadError"
        assert result["failure"]["attempts"] == 1

    def test_undecodable_job_file_terminalizes(self, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        paths.job_path("mangled").write_text("{not json")
        exit_summary = _serve(tmp_path)
        assert exit_summary["jobs"]["failed"] == 1
        result = load_result(paths, "mangled")
        assert result["status"] == JobStatus.FAILED

    def test_failing_jobs_retry_then_exhaust(self, tmp_path):
        doc = _spec().to_json_dict()
        doc["app"] = "NoSuchAppAnywhere"
        submit_job(tmp_path, JobRequest(
            job_id="retry", spec=doc, deadline_s=None, submitted_seq=0))
        _serve(tmp_path, max_attempts=3, backoff_base_s=0.0)
        result = load_result(ServicePaths(tmp_path), "retry")
        assert result["failure"]["attempts"] == 3
        journal = read_journal(ServicePaths(tmp_path).journal_path)
        assert journal.count("attempt_start", job_id="retry") == 3
        assert journal.count("attempt_failed", job_id="retry") == 3

    def test_deadline_fails_job_with_timeout(self, tmp_path):
        submit_job(tmp_path, _job("slow", _spec(duration_s=30.0),
                                  deadline_s=0.2))
        exit_summary = _serve(tmp_path, max_attempts=1,
                              slice_s=0.5, slice_sleep_s=0.05)
        assert exit_summary["jobs"]["failed"] == 1
        result = load_result(ServicePaths(tmp_path), "slow")
        assert result["failure"]["error_type"] == "TimeoutError"

    def test_breaker_open_sheds_new_jobs(self, tmp_path):
        # A job that arrives AFTER the breaker opened is shed with a
        # structured rejection instead of being run; jobs admitted
        # earlier still get their failure records.
        bad = _spec().to_json_dict()
        bad["app"] = "NoSuchAppAnywhere"
        paths = ServicePaths(tmp_path)

        async def scenario():
            config = ServiceConfig(
                state_dir=str(tmp_path), workers=1, max_attempts=1,
                breaker_threshold=1, breaker_cooldown_s=3600.0,
                fsync_journal=False, max_runtime_s=60.0)
            service = SessionService(config)
            task = asyncio.ensure_future(service.serve())
            submit_job(tmp_path, JobRequest(
                job_id="bad-0", spec=bad, deadline_s=None,
                submitted_seq=0))
            for _ in range(2000):
                if load_result(paths, "bad-0") is not None:
                    break
                await asyncio.sleep(0.01)
            submit_job(tmp_path, JobRequest(
                job_id="bad-1", spec=bad, deadline_s=None,
                submitted_seq=1))
            for _ in range(2000):
                if load_result(paths, "bad-1") is not None:
                    break
                await asyncio.sleep(0.01)
            service.request_shutdown()
            return await task

        asyncio.run(scenario())
        assert load_result(paths, "bad-0")["status"] == JobStatus.FAILED
        shed = load_result(paths, "bad-1")
        assert shed["status"] == JobStatus.REJECTED
        assert shed["failure"]["error_type"] == \
            "ServiceUnavailableError"
        journal = read_journal(paths.journal_path)
        assert journal.count("breaker_open") >= 1
        assert journal.count("job_rejected", job_id="bad-1") == 1

    def test_park_and_resume_is_byte_identical(self, tmp_path):
        spec = _spec(duration_s=6.0)
        submit_job(tmp_path, _job("parkme", spec))

        async def serve_then_shutdown():
            config = ServiceConfig(
                state_dir=str(tmp_path), workers=1,
                slice_s=1.0, slice_sleep_s=0.01,
                checkpoint_period_s=1.0, fsync_journal=False,
                max_runtime_s=60.0)
            service = SessionService(config)
            task = asyncio.ensure_future(service.serve())
            paths = ServicePaths(tmp_path)
            for _ in range(2000):
                if paths.checkpoint_path("parkme").exists():
                    break
                await asyncio.sleep(0.01)
            service.request_shutdown()
            return await task

        exit_summary = asyncio.run(serve_then_shutdown())
        paths = ServicePaths(tmp_path)
        journal = read_journal(paths.journal_path)
        assert journal.count("job_parked", job_id="parkme") == 1
        assert load_result(paths, "parkme") is None
        assert paths.checkpoint_path("parkme").exists()
        assert exit_summary["jobs"]["pending"] >= 1

        # Second incarnation resumes the parked job to completion.
        _serve(tmp_path)
        result = load_result(paths, "parkme")
        assert result["status"] == JobStatus.DONE
        assert json.dumps(result["summary"], sort_keys=True) == \
            _expected_summary_bytes(spec)
        journal = read_journal(paths.journal_path)
        assert journal.count("job_resumed", job_id="parkme") == 1
        assert journal.count("job_done", job_id="parkme") == 1

    def test_in_process_submit_rejected_while_draining(self, tmp_path):
        config = ServiceConfig(state_dir=str(tmp_path),
                               fsync_journal=False)
        service = SessionService(config)
        service.request_shutdown()
        with pytest.raises(ServiceUnavailableError):
            service.submit(_job("late", _spec()))


class TestControlAndStatus:
    def test_drain_and_stop_markers(self, tmp_path):
        request_drain(tmp_path)
        request_stop(tmp_path)
        paths = ServicePaths(tmp_path)
        assert paths.drain_marker().exists()
        assert paths.stop_marker().exists()

    def test_offline_status_classifies_jobs(self, tmp_path):
        paths = ServicePaths(tmp_path).ensure()
        submit_job(tmp_path, _job("pending-job", _spec(), seq=0))
        submit_job(tmp_path, _job("done-job", _spec(seed=1), seq=1))
        write_result(paths, "done-job", JobStatus.DONE, {"summary": {}})
        submit_job(tmp_path, _job("parked-job", _spec(seed=2), seq=2))
        atomic_write_json(paths.checkpoint_path("parked-job"),
                          {"schema": "repro-checkpoint/1"})
        status = service_status(tmp_path)
        jobs = {j["job_id"]: j["status"] for j in status["jobs"]}
        assert jobs["pending-job"] == "pending"
        assert jobs["done-job"] == "done"
        assert jobs["parked-job"] == "parked"
        assert status["counts"]["pending"] == 1
        assert status["counts"]["parked"] == 1

    def test_health_file_written(self, tmp_path):
        submit_job(tmp_path, _job("j0", _spec()))
        _serve(tmp_path)
        health = json.loads(
            ServicePaths(tmp_path).health_path.read_text())
        assert health["schema"] == "repro-health/1"
        assert health["state"] == "stopped"
        assert health["jobs"]["done"] == 1

    def test_service_config_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            ServiceConfig(state_dir=str(tmp_path), workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(state_dir=str(tmp_path), workers=2, shards=3)
        with pytest.raises(ServiceError):
            ServiceConfig(state_dir=str(tmp_path), queue_capacity=0)
