"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import PeriodicTask, Simulator


class TestSimulatorClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_negative_start_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulator(start_time=-1.0)

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)


class TestScheduling:
    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.5, lambda s: seen.append(s.now))
        sim.run_until(10.0)
        assert seen == [2.5]

    def test_call_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda s: s.call_after(
            0.5, lambda s2: seen.append(s2.now)))
        sim.run_until(10.0)
        assert seen == [1.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (3.0, 1.0, 2.0):
            sim.call_at(t, lambda s: seen.append(s.now))
        sim.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda s: seen.append("first"))
        sim.call_at(1.0, lambda s: seen.append("second"))
        sim.run_until(10.0)
        assert seen == ["first", "second"]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.call_at(4.0, lambda s: None)

    def test_scheduling_at_now_allowed(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda s: s.call_at(
            s.now, lambda s2: seen.append(s2.now)))
        sim.run_until(10.0)
        assert seen == [1.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            sim.call_after(-0.1, lambda s: None)

    def test_event_beyond_end_time_does_not_fire(self):
        sim = Simulator()
        seen = []
        sim.call_at(11.0, lambda s: seen.append(s.now))
        sim.run_until(10.0)
        assert seen == []
        assert sim.now == 10.0

    def test_event_exactly_at_end_time_fires(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda s: seen.append(s.now))
        sim.run_until(10.0)
        assert seen == [10.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda s: None)
        sim.run_until(2.5)
        assert sim.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.call_at(1.0, lambda s: seen.append(s.now))
        sim.cancel(handle)
        sim.run_until(10.0)
        assert seen == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.call_at(1.0, lambda s: None)
        sim.run_until(10.0)
        assert handle.fired
        sim.cancel(handle)  # must not raise

    def test_handle_states(self):
        sim = Simulator()
        handle = sim.call_at(1.0, lambda s: None)
        assert handle.pending
        sim.run_until(10.0)
        assert handle.fired and not handle.pending

    def test_cancel_from_within_event(self):
        sim = Simulator()
        seen = []
        later = sim.call_at(2.0, lambda s: seen.append("later"))
        sim.call_at(1.0, lambda s: s.cancel(later))
        sim.run_until(10.0)
        assert seen == []


class TestRun:
    def test_run_drains_queue(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda s: seen.append(1))
        sim.call_at(2.0, lambda s: seen.append(2))
        sim.run()
        assert seen == [1, 2]
        assert sim.now == 2.0

    def test_run_max_events_guard(self):
        sim = Simulator()

        def reschedule(s):
            s.call_after(0.001, reschedule)

        sim.call_after(0.001, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested(s):
            with pytest.raises(SimulationError):
                s.run_until(100.0)

        sim.call_at(1.0, nested)
        sim.run_until(10.0)


class TestPeriodicTask:
    def test_fires_at_period(self):
        sim = Simulator()
        seen = []
        PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        sim.run_until(3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_start_delay(self):
        sim = Simulator()
        seen = []
        PeriodicTask(sim, 1.0, lambda s: seen.append(s.now),
                     start_delay=0.25)
        sim.run_until(2.5)
        assert seen == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        sim.call_at(2.5, lambda s: task.stop())
        sim.run_until(10.0)
        assert seen == [1.0, 2.0]
        assert task.stopped

    def test_stop_from_within_callback(self):
        sim = Simulator()
        task = PeriodicTask(sim, 1.0, lambda s: task.stop())
        sim.run_until(10.0)
        assert task.ticks == 1

    def test_set_period_takes_effect_next_tick(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        sim.call_at(1.5, lambda s: task.set_period(2.0))
        sim.run_until(6.5)
        # Ticks at 1.0 and 2.0 (scheduled under old period), then every
        # 2.0 seconds.
        assert seen == [1.0, 2.0, 4.0, 6.0]

    def test_tick_counter(self):
        sim = Simulator()
        task = PeriodicTask(sim, 0.5, lambda s: None)
        sim.run_until(2.0)
        assert task.ticks == 4

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            PeriodicTask(sim, 0.0, lambda s: None)


class TestSetPeriodRetime:
    """``set_period(..., retime=True)`` re-times the pending tick."""

    def test_shrinking_pulls_the_pending_tick_earlier(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        # At t=1.2 the next tick is pending for t=2.0; shrinking to
        # 0.25 re-times it to last_fire + new_period = 1.25.
        sim.call_at(1.2, lambda s: task.set_period(0.25, retime=True))
        sim.run_until(2.0)
        assert seen == [1.0, 1.25, 1.5, 1.75, 2.0]

    def test_growing_pushes_the_pending_tick_later(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        sim.call_at(1.5, lambda s: task.set_period(3.0, retime=True))
        sim.run_until(8.0)
        assert seen == [1.0, 4.0, 7.0]

    def test_overdue_tick_clamps_to_now(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 10.0, lambda s: seen.append(s.now))
        # last_fire=0, new period 1.0 -> 1.0 is already in the past at
        # t=5; the tick fires immediately (now), not retroactively.
        sim.call_at(5.0, lambda s: task.set_period(1.0, retime=True))
        sim.run_until(7.5)
        assert seen == [5.0, 6.0, 7.0]

    def test_retime_after_stop_is_a_no_op(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        def stop_then_retime(s):
            task.stop()
            task.set_period(0.1, retime=True)
        sim.call_at(1.5, stop_then_retime)
        sim.run_until(5.0)
        assert seen == [1.0]

    def test_default_still_waits_for_next_reschedule(self):
        sim = Simulator()
        seen = []
        task = PeriodicTask(sim, 1.0, lambda s: seen.append(s.now))
        sim.call_at(0.1, lambda s: task.set_period(0.25))
        sim.run_until(1.6)
        # Pending tick keeps its old time; new period applies after.
        assert seen == [1.0, 1.25, 1.5]


class TestDeterminism:
    def test_identical_schedules_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            seen = []
            PeriodicTask(sim, 0.3, lambda s: seen.append(round(s.now, 9)))
            sim.call_at(0.95, lambda s: seen.append("mark"))
            sim.run_until(2.0)
            return seen

        assert build_and_run() == build_and_run()
