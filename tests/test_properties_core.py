"""Property-based tests (hypothesis) for the core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.double_buffer import DoubleBuffer, SampledDoubleBuffer
from repro.core.grid import GridComparator, GridSpec
from repro.core.section_table import SectionTable

# --------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------

rate_sets = st.lists(
    st.floats(min_value=1.0, max_value=240.0, allow_nan=False),
    min_size=1, max_size=8, unique=True,
).map(sorted)

content_rates = st.floats(min_value=0.0, max_value=500.0,
                          allow_nan=False)

buffer_shapes = st.tuples(st.integers(min_value=4, max_value=64),
                          st.integers(min_value=4, max_value=64))


# --------------------------------------------------------------------
# Section table (Equation 1)
# --------------------------------------------------------------------

class TestSectionTableProperties:
    @given(rates=rate_sets, content=content_rates)
    def test_lookup_always_returns_a_panel_rate(self, rates, content):
        table = SectionTable.from_rates(rates)
        assert table.lookup(content) in table.refresh_rates_hz

    @given(rates=rate_sets, content=content_rates)
    def test_headroom_selected_rate_covers_content(self, rates, content):
        """The anti-deadlock property: the selected rate is at least
        the content rate, saturating at the panel maximum."""
        table = SectionTable.from_rates(rates)
        selected = table.lookup(content)
        assert selected >= min(content, table.max_rate_hz) - 1e-9

    @given(rates=rate_sets,
           a=content_rates, b=content_rates)
    def test_lookup_is_monotone(self, rates, a, b):
        table = SectionTable.from_rates(rates)
        lo, hi = min(a, b), max(a, b)
        assert table.lookup(lo) <= table.lookup(hi)

    @given(rates=rate_sets)
    def test_sections_partition_the_axis(self, rates):
        table = SectionTable.from_rates(rates)
        sections = table.sections
        assert sections[0].low == 0.0
        assert sections[-1].high == float("inf")
        for a, b in zip(sections, sections[1:]):
            assert a.high == b.low

    @given(rates=rate_sets)
    def test_zero_content_selects_minimum(self, rates):
        table = SectionTable.from_rates(rates)
        assert table.lookup(0.0) == table.min_rate_hz

    @given(rates=rate_sets)
    def test_huge_content_selects_maximum(self, rates):
        table = SectionTable.from_rates(rates)
        assert table.lookup(10_000.0) == table.max_rate_hz

    @given(rates=rate_sets)
    def test_every_rate_is_reachable(self, rates):
        """Every panel level is selected by some content rate — no
        level is dead in the table."""
        table = SectionTable.from_rates(rates)
        selected = {s.refresh_rate_hz for s in table.sections}
        assert selected == set(table.refresh_rates_hz)


# --------------------------------------------------------------------
# Grid sampling
# --------------------------------------------------------------------

class TestGridProperties:
    @given(shape=buffer_shapes,
           samples=st.integers(min_value=1, max_value=5000))
    def test_indices_always_in_bounds(self, shape, samples):
        grid = GridSpec.from_sample_count(shape, samples)
        assert grid.sample_rows.max() < shape[0]
        assert grid.sample_cols.max() < shape[1]
        assert grid.sample_rows.min() >= 0
        assert grid.sample_cols.min() >= 0

    @given(shape=buffer_shapes,
           samples=st.integers(min_value=1, max_value=5000))
    def test_sample_count_never_exceeds_request_scale(self, shape,
                                                      samples):
        grid = GridSpec.from_sample_count(shape, samples)
        total = shape[0] * shape[1]
        assert 1 <= grid.sample_count <= total
        # Square-cell rounding: each grid dimension is
        # round(dim / cell) clamped to >= 1, so the count is bounded by
        # (h/cell + 1) * (w/cell + 1) <= samples + (h + w)/cell + 1.
        # The additive slack dominates for thin buffers (a 41x4 buffer
        # at samples=2 legitimately yields a 5x1 grid).
        if samples < total:
            import math
            cell = math.sqrt(total / samples)
            bound = samples + (shape[0] + shape[1]) / cell + 1
            assert grid.sample_count <= bound

    @given(shape=buffer_shapes, seed=st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_identical_frames_always_equal(self, shape, seed):
        rng = np.random.default_rng(seed)
        frame = rng.integers(0, 256, size=shape + (3,), dtype=np.uint8)
        grid = GridSpec.from_sample_count(shape, 50)
        comp = GridComparator(grid)
        assert comp.frames_equal(frame, frame.copy())

    @given(shape=buffer_shapes, seed=st.integers(0, 2**16))
    @settings(max_examples=30)
    def test_change_on_sample_point_always_detected(self, shape, seed):
        rng = np.random.default_rng(seed)
        frame = rng.integers(0, 256, size=shape + (3,), dtype=np.uint8)
        grid = GridSpec.from_sample_count(shape, 50)
        comp = GridComparator(grid)
        other = frame.copy()
        row = int(grid.sample_rows[0])
        col = int(grid.sample_cols[0])
        other[row, col, 0] ^= 0xFF
        assert not comp.frames_equal(other, frame)

    @given(shape=buffer_shapes)
    def test_full_grid_covers_every_pixel(self, shape):
        grid = GridSpec.full(shape)
        assert grid.sample_count == shape[0] * shape[1]
        assert np.array_equal(grid.sample_rows, np.arange(shape[0]))
        assert np.array_equal(grid.sample_cols, np.arange(shape[1]))


# --------------------------------------------------------------------
# Double buffering
# --------------------------------------------------------------------

class TestDoubleBufferProperties:
    @given(values=st.lists(st.integers(0, 255), min_size=1,
                           max_size=20))
    def test_previous_always_equals_last_capture(self, values):
        buf = DoubleBuffer((6, 5, 3))
        for v in values:
            buf.capture(np.full((6, 5, 3), v, dtype=np.uint8))
            assert (buf.previous == v).all()
        assert buf.captures == len(values)

    @given(values=st.lists(st.integers(0, 255), min_size=2,
                           max_size=20))
    def test_sampled_buffer_tracks_full_buffer(self, values):
        grid = GridSpec((6, 5), 2, 2)
        full = DoubleBuffer((6, 5, 3))
        sampled = SampledDoubleBuffer(grid)
        comp_full = GridComparator(grid)
        comp_sampled = GridComparator(grid)
        prev_verdicts = []
        for v in values:
            frame = np.full((6, 5, 3), v, dtype=np.uint8)
            if full.previous is not None:
                a = comp_full.frames_equal(frame, full.previous)
                b = comp_sampled.frames_equal(frame, sampled.previous)
                prev_verdicts.append((a, b))
            full.capture(frame)
            sampled.capture(frame)
        assert all(a == b for a, b in prev_verdicts)
