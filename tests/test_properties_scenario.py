"""Property-based tests for multi-app scenarios."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.apps.catalog import all_app_names
from repro.sim.scenario import (
    ScenarioConfig,
    ScenarioSegment,
    run_scenario,
)

app_names = st.sampled_from(all_app_names())

segments = st.lists(
    st.builds(ScenarioSegment,
              app=app_names,
              duration_s=st.floats(min_value=3.0, max_value=8.0)),
    min_size=1, max_size=3,
)

seeds = st.integers(min_value=0, max_value=2**12)


class TestScenarioProperties:
    @given(segs=segments, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_segment_energies_partition_total(self, segs, seed):
        scenario = run_scenario(ScenarioConfig(
            segments=tuple(segs), governor="section+boost", seed=seed))
        total = scenario.power_report().energy_mj
        summed = sum(scenario.segment_power(s).energy_mj
                     for s in scenario.segments)
        assert summed == pytest.approx(total, rel=1e-9)

    @given(segs=segments, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_every_segment_confined_and_started(self, segs, seed):
        scenario = run_scenario(ScenarioConfig(
            segments=tuple(segs), governor="section", seed=seed))
        for segment in scenario.segments:
            assert segment.application.started
            times = segment.application.submissions.times
            if len(times):
                assert times.min() >= segment.start_s - 1e-9
                assert times.max() <= segment.end_s + 1e-6

    @given(segs=segments, seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_governed_scenario_never_costs_more(self, segs, seed):
        from repro.power.calibration import PowerCalibration
        from repro.power.model import PowerModel
        no_overhead = PowerModel(PowerCalibration(
            meter_overhead_mj_per_frame=0.0))
        base = run_scenario(ScenarioConfig(
            segments=tuple(segs), governor="fixed", seed=seed))
        governed = run_scenario(ScenarioConfig(
            segments=tuple(segs), governor="section", seed=seed))
        assert governed.power_report(no_overhead).energy_mj <= \
            base.power_report(no_overhead).energy_mj + 1e-6

    @given(segs=segments, seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_refresh_rates_are_panel_levels(self, segs, seed):
        scenario = run_scenario(ScenarioConfig(
            segments=tuple(segs), governor="section+boost", seed=seed))
        levels = set(scenario.panel.spec.refresh_rates_hz)
        _, rates = scenario.panel.rate_history.transitions
        assert set(rates.tolist()) <= levels
