"""Tests for governor policies and the driver."""

import numpy as np
import pytest

from repro.core.content_rate import ContentRateMeter, MeterConfig
from repro.core.governor import (
    GovernorDriver,
    NaiveMatchGovernor,
    SectionBasedGovernor,
    TouchBoostGovernor,
)
from repro.core.section_table import SectionTable
from repro.display.panel import DisplayPanel
from repro.display.presets import GALAXY_S3_PANEL
from repro.errors import ConfigurationError
from repro.graphics.framebuffer import Framebuffer
from repro.sim.engine import Simulator

RATES = GALAXY_S3_PANEL.refresh_rates_hz


def make_meter():
    fb = Framebuffer(32, 24)
    return fb, ContentRateMeter(fb, MeterConfig(sample_count=64))


def write_meaningful(fb, time, value):
    fb.write(np.full(fb.shape, value % 256, dtype=np.uint8), time)


class TestSectionBasedGovernor:
    def test_idle_selects_minimum(self):
        _, meter = make_meter()
        gov = SectionBasedGovernor(SectionTable.from_rates(RATES), meter)
        assert gov.select_rate(5.0) == 20.0

    def test_rate_tracks_content(self):
        fb, meter = make_meter()
        gov = SectionBasedGovernor(SectionTable.from_rates(RATES), meter)
        # 15 meaningful frames in the last second -> 24 Hz section.
        for i in range(15):
            write_meaningful(fb, 4.0 + i / 15.0, i * 16)
        assert gov.select_rate(5.0) == 24.0

    def test_high_content_selects_maximum(self):
        fb, meter = make_meter()
        gov = SectionBasedGovernor(SectionTable.from_rates(RATES), meter)
        for i in range(40):
            write_meaningful(fb, 4.0 + i / 40.0, i * 6)
        assert gov.select_rate(5.0) == 60.0


class TestNaiveMatchGovernor:
    def test_picks_lowest_rate_covering_content(self):
        fb, meter = make_meter()
        gov = NaiveMatchGovernor(RATES, meter)
        for i in range(22):
            write_meaningful(fb, 4.0 + i / 22.0, i * 11)
        # 22 fps content -> naive picks 24 Hz (lowest >= 22).
        assert gov.select_rate(5.0) == 24.0

    def test_zero_content_picks_minimum(self):
        _, meter = make_meter()
        gov = NaiveMatchGovernor(RATES, meter)
        assert gov.select_rate(1.0) == 20.0

    def test_saturates_at_maximum(self):
        fb, meter = make_meter()
        gov = NaiveMatchGovernor(RATES, meter)
        for i in range(70):
            write_meaningful(fb, 4.0 + i / 70.0, i)
        assert gov.select_rate(5.0) == 60.0

    def test_no_headroom_is_the_deadlock(self):
        """The paper's negative result: the naive rule picks a rate
        *equal* to the section top, so V-Sync clipping can hide content
        growth — unlike the section table, which leaves headroom."""
        fb, meter = make_meter()
        gov = NaiveMatchGovernor(RATES, meter)
        table = SectionTable.from_rates(RATES)
        # Exactly 20 fps measured (= clipped at a 20 Hz refresh).
        for i in range(20):
            write_meaningful(fb, 4.0 + i / 20.0, i * 12)
        assert gov.select_rate(5.0) == 20.0      # stuck
        assert table.lookup(20.0) == 24.0        # section control escapes

    def test_empty_rates_rejected(self):
        _, meter = make_meter()
        with pytest.raises(ConfigurationError):
            NaiveMatchGovernor([], meter)


class TestTouchBoostGovernor:
    def _boosted(self):
        _, meter = make_meter()
        inner = SectionBasedGovernor(SectionTable.from_rates(RATES), meter)
        return TouchBoostGovernor(inner, boost_rate_hz=60.0, hold_s=1.0)

    def test_no_boost_delegates_to_inner(self):
        gov = self._boosted()
        assert gov.select_rate(5.0) == 20.0

    def test_touch_boosts_to_maximum(self):
        gov = self._boosted()
        assert gov.on_touch(5.0) == 60.0
        assert gov.select_rate(5.5) == 60.0
        assert gov.boosting(5.5)

    def test_boost_expires_after_hold(self):
        gov = self._boosted()
        gov.on_touch(5.0)
        assert gov.select_rate(6.1) == 20.0
        assert not gov.boosting(6.1)

    def test_repeated_touches_extend_boost(self):
        gov = self._boosted()
        gov.on_touch(5.0)
        gov.on_touch(5.8)
        assert gov.select_rate(6.5) == 60.0
        assert gov.boosts == 2

    def test_name_composes(self):
        gov = self._boosted()
        assert "section-based" in gov.name
        assert "touch-boost" in gov.name


class TestGovernorDriver:
    def _setup(self, policy_cls=SectionBasedGovernor):
        sim = Simulator()
        panel = DisplayPanel(sim, GALAXY_S3_PANEL)
        fb, meter = make_meter()
        policy = SectionBasedGovernor(SectionTable.from_rates(RATES),
                                      meter)
        driver = GovernorDriver(sim, panel, policy,
                                decision_period_s=0.2)
        return sim, panel, fb, driver

    def test_periodic_decisions_lower_idle_rate(self):
        sim, panel, _, driver = self._setup()
        panel.start()
        driver.start()
        sim.run_until(2.0)
        assert panel.refresh_rate_hz == 20.0
        assert len(driver.decisions) >= 9

    def test_touch_with_plain_policy_is_recorded_not_applied(self):
        sim, panel, _, driver = self._setup()
        panel.start()
        driver.start()
        sim.run_until(1.0)
        driver.notify_touch(sim.now)
        assert driver.touch_times == (1.0,)
        # Plain section policy has no immediate override.
        assert panel.target_rate_hz == 20.0

    def test_touch_with_boost_applies_immediately(self):
        sim = Simulator()
        panel = DisplayPanel(sim, GALAXY_S3_PANEL, initial_rate_hz=20.0)
        fb, meter = make_meter()
        policy = TouchBoostGovernor(
            SectionBasedGovernor(SectionTable.from_rates(RATES), meter),
            boost_rate_hz=60.0, hold_s=1.0)
        driver = GovernorDriver(sim, panel, policy)
        panel.start()
        sim.run_until(1.0)
        driver.notify_touch(sim.now)
        assert panel.target_rate_hz == 60.0

    def test_double_start_rejected(self):
        sim, panel, _, driver = self._setup()
        driver.start()
        with pytest.raises(ConfigurationError):
            driver.start()

    def test_stop_halts_decisions(self):
        sim, panel, _, driver = self._setup()
        panel.start()
        driver.start()
        sim.run_until(1.0)
        n = len(driver.decisions)
        driver.stop()
        sim.run_until(3.0)
        assert len(driver.decisions) == n
