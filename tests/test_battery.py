"""Tests for battery-life projection."""

import pytest

from repro.errors import ConfigurationError
from repro.power.battery import (
    GALAXY_S3_BATTERY,
    BatterySpec,
    minutes_gained,
    screen_on_hours,
)


class TestBatterySpec:
    def test_usable_energy(self):
        spec = BatterySpec(capacity_mah=1000.0, nominal_voltage_v=1.0,
                           usable_fraction=1.0)
        # 1000 mAh x 1 V = 1000 mWh = 3.6e6 mJ.
        assert spec.usable_energy_mj == pytest.approx(3.6e6)

    def test_galaxy_s3_pack(self):
        # 2100 mAh x 3.8 V x 0.92 = ~7.34 Wh usable.
        assert GALAXY_S3_BATTERY.usable_energy_mj == pytest.approx(
            2100 * 3.8 * 3600 * 0.92)

    @pytest.mark.parametrize("kwargs", [
        {"capacity_mah": 0.0},
        {"nominal_voltage_v": -1.0},
        {"usable_fraction": 0.0},
        {"usable_fraction": 1.1},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatterySpec(**kwargs)


class TestScreenOnHours:
    def test_inverse_in_power(self):
        assert screen_on_hours(500.0) == pytest.approx(
            2.0 * screen_on_hours(1000.0))

    def test_realistic_magnitude(self):
        # ~800 mW screen-on draw on the S3 pack: several hours.
        hours = screen_on_hours(800.0)
        assert 5.0 < hours < 15.0

    def test_zero_power_rejected(self):
        with pytest.raises(ConfigurationError):
            screen_on_hours(0.0)


class TestMinutesGained:
    def test_positive_for_a_saving(self):
        assert minutes_gained(800.0, 650.0) > 0.0

    def test_zero_for_no_change(self):
        assert minutes_gained(800.0, 800.0) == pytest.approx(0.0)

    def test_negative_for_regression(self):
        assert minutes_gained(800.0, 900.0) < 0.0

    def test_paper_scale_saving_gains_an_hour_plus(self):
        # ~150 mW off an ~800 mW draw gains over an hour of screen-on
        # time — the user-facing statement of the paper's result.
        gained = minutes_gained(800.0, 650.0)
        assert 60.0 < gained < 240.0

    def test_custom_battery(self):
        small = BatterySpec(capacity_mah=1000.0)
        assert minutes_gained(800.0, 650.0, small) < \
            minutes_gained(800.0, 650.0, GALAXY_S3_BATTERY)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            minutes_gained(0.0, 100.0)
        with pytest.raises(ConfigurationError):
            minutes_gained(100.0, 0.0)


class TestSessionIntegration:
    def test_end_to_end_minutes_gained(self):
        import repro
        base = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="fixed", duration_s=15.0,
            seed=1))
        governed = repro.run_session(repro.SessionConfig(
            app="Jelly Splash", governor="section+boost",
            duration_s=15.0, seed=1))
        gained = minutes_gained(
            base.power_report().mean_power_mw,
            governed.power_report().mean_power_mw)
        assert gained > 20.0  # the game's saving is worth real time
