"""Tests for the graphics stack: framebuffer, surfaces, compositor."""

import numpy as np
import pytest

from repro.errors import GraphicsError
from repro.graphics.compositor import SurfaceManager
from repro.graphics.framebuffer import Framebuffer
from repro.graphics.surface import Surface


@pytest.fixture
def fb():
    return Framebuffer(width=16, height=12)


class TestFramebuffer:
    def test_geometry(self, fb):
        assert fb.shape == (12, 16, 3)
        assert fb.pixel_count == 192

    def test_starts_black_generation_zero(self, fb):
        assert fb.generation == 0
        assert fb.pixels.sum() == 0

    def test_write_replaces_pixels_and_bumps_generation(self, fb):
        frame = np.full((12, 16, 3), 7, dtype=np.uint8)
        fb.write(frame, time=1.0)
        assert fb.generation == 1
        assert fb.last_update_time == 1.0
        assert (fb.pixels == 7).all()

    def test_write_copies_not_aliases(self, fb):
        frame = np.full((12, 16, 3), 7, dtype=np.uint8)
        fb.write(frame, time=1.0)
        frame[:] = 99
        assert (fb.pixels == 7).all()

    def test_write_wrong_shape_rejected(self, fb):
        with pytest.raises(GraphicsError):
            fb.write(np.zeros((12, 15, 3), dtype=np.uint8), 0.0)

    def test_write_wrong_dtype_rejected(self, fb):
        with pytest.raises(GraphicsError):
            fb.write(np.zeros((12, 16, 3), dtype=np.float32), 0.0)

    def test_update_listeners_fire(self, fb):
        seen = []
        fb.add_update_listener(lambda t, f: seen.append((t, f.generation)))
        fb.write(np.zeros((12, 16, 3), dtype=np.uint8), 2.0)
        assert seen == [(2.0, 1)]

    def test_remove_listener(self, fb):
        seen = []

        def listener(t, f):
            seen.append(t)

        fb.add_update_listener(listener)
        fb.remove_update_listener(listener)
        fb.write(np.zeros((12, 16, 3), dtype=np.uint8), 1.0)
        assert seen == []

    def test_remove_unknown_listener_rejected(self, fb):
        with pytest.raises(GraphicsError):
            fb.remove_update_listener(lambda t, f: None)

    def test_snapshot_is_independent(self, fb):
        snap = fb.snapshot()
        fb.write(np.full((12, 16, 3), 5, dtype=np.uint8), 1.0)
        assert snap.sum() == 0


class TestSurface:
    def test_damage_tracking(self):
        s = Surface(8, 8)
        assert not s.is_damaged
        s.mark_damaged()
        assert s.is_damaged
        s.acknowledge_post()
        assert not s.is_damaged

    def test_fill_marks_damaged(self):
        s = Surface(8, 8)
        s.fill((10, 20, 30))
        assert s.is_damaged
        assert (s.pixels[0, 0] == [10, 20, 30]).all()

    def test_rect(self):
        s = Surface(8, 4, x=2, y=3)
        assert s.rect == (3, 2, 7, 10)

    def test_check_fits(self):
        s = Surface(8, 4, x=2, y=3)
        s.check_fits(10, 7)  # exactly fits
        with pytest.raises(GraphicsError):
            s.check_fits(9, 7)

    def test_invalid_geometry_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Surface(0, 8)
        with pytest.raises(ConfigurationError):
            Surface(8, 8, x=-1)


class TestSurfaceManager:
    def _make(self):
        fb = Framebuffer(16, 12)
        sm = SurfaceManager(fb)
        surface = Surface(16, 12, name="app")
        sm.register_surface(surface)
        return fb, sm, surface

    def test_register_duplicate_name_rejected(self):
        fb = Framebuffer(16, 12)
        sm = SurfaceManager(fb)
        sm.register_surface(Surface(16, 12, name="app"))
        with pytest.raises(GraphicsError):
            sm.register_surface(Surface(8, 8, name="app"))

    def test_register_oversized_surface_rejected(self):
        fb = Framebuffer(16, 12)
        sm = SurfaceManager(fb)
        with pytest.raises(GraphicsError):
            sm.register_surface(Surface(17, 12))

    def test_post_unregistered_rejected(self):
        fb = Framebuffer(16, 12)
        sm = SurfaceManager(fb)
        with pytest.raises(GraphicsError):
            sm.post(Surface(16, 12))

    def test_no_post_no_composition(self):
        fb, sm, _ = self._make()
        assert sm.on_vsync(1.0) is False
        assert fb.generation == 0
        assert sm.compositions == 0

    def test_post_then_vsync_composites(self):
        fb, sm, surface = self._make()
        surface.fill((1, 2, 3))
        sm.post(surface)
        assert sm.on_vsync(1.0) is True
        assert fb.generation == 1
        assert (fb.pixels == [1, 2, 3]).all()

    def test_vsync_throttle_collapses_multiple_posts(self):
        fb, sm, surface = self._make()
        surface.fill((1, 1, 1))
        sm.post(surface)
        surface.fill((2, 2, 2))
        sm.post(surface)
        sm.on_vsync(1.0)
        # One frame update, showing the latest content.
        assert fb.generation == 1
        assert (fb.pixels == 2).all()

    def test_redundant_frame_detection(self):
        fb, sm, surface = self._make()
        surface.fill((5, 5, 5))
        sm.post(surface)
        sm.on_vsync(1.0)
        sm.post(surface)  # unchanged pixels -> redundant frame
        sm.on_vsync(2.0)
        assert sm.compositions == 2
        assert sm.redundant_compositions == 1
        assert sm.meaningful_compositions == 1

    def test_composition_listener_reports_redundancy(self):
        fb, sm, surface = self._make()
        seen = []
        sm.add_composition_listener(lambda t, r: seen.append((t, r)))
        surface.fill((5, 5, 5))
        sm.post(surface)
        sm.on_vsync(1.0)
        sm.post(surface)
        sm.on_vsync(2.0)
        assert seen == [(1.0, False), (2.0, True)]

    def test_z_order_composition(self):
        fb = Framebuffer(16, 12)
        sm = SurfaceManager(fb)
        bottom = Surface(16, 12, z_order=0, name="bottom")
        top = Surface(4, 4, x=0, y=0, z_order=1, name="top")
        sm.register_surface(top)
        sm.register_surface(bottom)
        bottom.fill((10, 10, 10))
        top.fill((200, 200, 200))
        sm.post(bottom)
        sm.post(top)
        sm.on_vsync(1.0)
        assert (fb.pixels[0, 0] == 200).all()   # overlay wins on top
        assert (fb.pixels[11, 15] == 10).all()  # bottom elsewhere

    def test_unregister_surface(self):
        fb, sm, surface = self._make()
        sm.unregister_surface(surface)
        assert sm.surfaces == []
        with pytest.raises(GraphicsError):
            sm.unregister_surface(surface)

    def test_post_acknowledged_on_composition(self):
        fb, sm, surface = self._make()
        surface.fill((9, 9, 9))
        sm.post(surface)
        assert surface.is_damaged
        sm.on_vsync(1.0)
        assert not surface.is_damaged
