"""Tests for the typed component pipeline (`repro.pipeline`).

The contracts under test:

* registries reject unknown keys with every valid key listed, protect
  builtins, and ship extension entries across process boundaries;
* :class:`SessionSpec` round-trips losslessly (config <-> spec <->
  JSON) and rejects malformed documents loudly;
* :class:`SessionBuilder` / :func:`run_spec` produce sessions
  byte-identical to the legacy :func:`run_session` facade, serial and
  pooled alike;
* a governor registered from one external module — no core edits — is
  selectable everywhere a builtin is: config validation, ``run_batch``
  worker pools, the ``repro compare`` CLI, and the replication
  experiment.

Process-pool tests use the ``fork`` start method so the parent's
registry state is visible in workers without an installed package.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.analysis.export import session_summary_dict
from repro.apps.catalog import app_profile
from repro.core.content_rate import MeterConfig
from repro.core.governor import GovernorPolicy
from repro.display.presets import GALAXY_S3_PANEL, panel_preset
from repro.errors import ConfigurationError, SpecError, WorkloadError
from repro.faults.plan import FaultPlan, FaultWindow
from repro.pipeline import (
    APPS,
    GOVERNORS,
    PANELS,
    GovernorContext,
    Registry,
    SessionBuilder,
    SessionSpec,
    fixed_baseline_config,
    governor_names,
    run_fixed_baseline,
    run_spec,
    spec_roundtrip,
)
from repro.sim.batch import run_batch
from repro.sim.session import GOVERNOR_CHOICES, SessionConfig, run_session
from repro.telemetry import TelemetryConfig


def _summary_bytes(result):
    return json.dumps(session_summary_dict(result), sort_keys=True)


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_unknown_key_lists_choices(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1, builtin=True)
        registry.register("b", lambda: 2)
        with pytest.raises(ConfigurationError) as err:
            registry.get("c")
        assert "unknown widget 'c'" in str(err.value)
        assert "'a'" in str(err.value) and "'b'" in str(err.value)

    def test_governor_registry_error_lists_builtins(self):
        with pytest.raises(ConfigurationError) as err:
            GOVERNORS.get("psychic")
        message = str(err.value)
        for name in GOVERNOR_CHOICES:
            assert repr(name) in message

    def test_app_registry_raises_workload_error(self):
        with pytest.raises(WorkloadError) as err:
            APPS.get("NoSuchApp")
        assert "Facebook" in str(err.value)

    def test_config_validation_uses_registry_message(self):
        with pytest.raises(ConfigurationError) as err:
            SessionConfig(app="Facebook", governor="psychic")
        assert "choices" in str(err.value)
        assert "'section+boost'" in str(err.value)

    def test_builtin_cannot_be_replaced(self):
        with pytest.raises(ConfigurationError) as err:
            GOVERNORS.register("fixed", lambda context: None)
        assert "builtin" in str(err.value)

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError):
            GOVERNORS.unregister("fixed")

    def test_duplicate_needs_replace_flag(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        with pytest.raises(ConfigurationError) as err:
            registry.register("a", lambda: 2)
        assert "replace=True" in str(err.value)
        registry.register("a", lambda: 2, replace=True)
        assert registry.get("a")() == 2

    def test_unregister_removes_extension(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(ConfigurationError):
            registry.unregister("a")

    def test_names_keep_registration_order(self):
        assert GOVERNORS.builtin_names() == GOVERNOR_CHOICES
        assert governor_names()[:len(GOVERNOR_CHOICES)] == GOVERNOR_CHOICES

    def test_extras_exclude_builtins(self):
        registry = Registry("widget")
        registry.register("core", lambda: 1, builtin=True)
        registry.register("plug", lambda: 2)
        assert [key for key, _ in registry.extras()] == ["plug"]
        fresh = Registry("widget")
        fresh.register("core", lambda: 1, builtin=True)
        fresh.restore(registry.extras())
        assert fresh.get("plug")() == 2

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("deco")
        def make():
            return 3

        assert registry.create("deco") == 3
        assert make() == 3

    def test_panel_presets_keep_identity(self):
        assert PANELS.get("galaxy-s3")() is GALAXY_S3_PANEL
        assert panel_preset("galaxy-s3") is GALAXY_S3_PANEL


# ----------------------------------------------------------------------
# SessionSpec codec
# ----------------------------------------------------------------------
def _rich_config():
    return SessionConfig(
        app="Jelly Splash", governor="section+hysteresis",
        duration_s=4.0, seed=9, panel=panel_preset("ltpo-120"),
        meter=MeterConfig(sample_count=4096),
        boost_hold_s=0.5, table_bias=1, status_bar=True,
        track_oled=True,
        faults=FaultPlan(meter_fail=0.2, seed=3, windows=(
            FaultWindow(site="meter_fail", start_s=1.0, end_s=2.0,
                        rate=0.9),)),
        telemetry=TelemetryConfig(profile_spans=False))


class TestSessionSpec:
    @pytest.mark.parametrize("config", [
        SessionConfig(app="Facebook", duration_s=3.0, seed=1),
        SessionConfig(app=app_profile("CGV"), governor="oracle",
                      duration_s=3.0, seed=2),
        _rich_config(),
    ], ids=["plain", "inline-profile", "rich"])
    def test_config_roundtrip_is_lossless(self, config):
        spec = SessionSpec.from_config(config)
        assert spec.to_config() == config
        assert SessionSpec.from_json(spec.to_json()) == spec
        assert spec_roundtrip(config) == config

    def test_document_is_pure_json(self):
        document = SessionSpec.from_config(_rich_config()).to_json_dict()
        assert document["schema"] == "repro-session/1"
        assert document["panel"] == "ltpo-120"
        assert document["faults"]["windows"][0]["start_s"] == 1.0
        # json must serialize without a custom encoder
        json.loads(json.dumps(document))

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SpecError) as err:
            SessionSpec.from_json_dict(
                {"app": "Facebook", "goverour": "fixed"})
        assert "goverour" in str(err.value)
        assert "'governor'" in str(err.value)

    def test_unknown_nested_key_rejected(self):
        spec = SessionSpec(app="Facebook",
                           meter={"sample_cout": 9216})
        with pytest.raises(SpecError) as err:
            spec.to_config()
        assert "sample_cout" in str(err.value)
        assert "'sample_count'" in str(err.value)

    def test_wrong_schema_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec.from_json_dict(
                {"schema": "repro-session/99", "app": "Facebook"})

    def test_missing_app_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec.from_json_dict({"governor": "fixed"})

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec.from_json("{not json")

    def test_unknown_panel_name_lists_presets(self):
        with pytest.raises(ConfigurationError) as err:
            SessionSpec(app="Facebook", panel="crt").to_config()
        assert "'galaxy-s3'" in str(err.value)

    def test_unknown_app_type_rejected(self):
        with pytest.raises(SpecError):
            SessionSpec(app={"type": "movie"}).to_config()

    def test_spec_error_is_configuration_error(self):
        assert issubclass(SpecError, ConfigurationError)


# ----------------------------------------------------------------------
# Builder / facade equivalence
# ----------------------------------------------------------------------
class TestBuilderEquivalence:
    def test_builder_matches_legacy_facade(self):
        config = _rich_config()
        legacy = run_session(config)
        built = SessionBuilder(config).run()
        assert _summary_bytes(legacy) == _summary_bytes(built)
        legacy_times, legacy_rates = legacy.panel.rate_history.transitions
        built_times, built_rates = built.panel.rate_history.transitions
        assert legacy_times.tolist() == built_times.tolist()
        assert legacy_rates.tolist() == built_rates.tolist()

    def test_run_spec_matches_run_session(self):
        config = _rich_config()
        document = SessionSpec.from_config(config).to_json_dict()
        assert (_summary_bytes(run_spec(document))
                == _summary_bytes(run_session(config)))

    def test_to_spec_inverse(self):
        config = _rich_config()
        assert config.to_spec().to_config() == config

    def test_fixed_baseline_helper_matches_inline_config(self):
        config = fixed_baseline_config("Facebook", duration_s=3.0,
                                       seed=5)
        assert config.governor == "fixed"
        inline = SessionConfig(app="Facebook", governor="fixed",
                               duration_s=3.0, seed=5)
        assert config == inline
        helper = run_fixed_baseline("Facebook", duration_s=3.0, seed=5)
        assert _summary_bytes(helper) == _summary_bytes(
            run_session(inline))

    def test_batch_ships_specs_byte_identically(self):
        configs = [
            SessionConfig(app="Facebook", governor="section+boost",
                          duration_s=3.0, seed=seed)
            for seed in range(4)
        ] + [_rich_config()]
        serial = run_batch(configs, workers=1)
        pooled = run_batch(configs, workers=4, mp_context="fork")
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))


# ----------------------------------------------------------------------
# One-module governor extension
# ----------------------------------------------------------------------
class HalfMaxGovernor(GovernorPolicy):
    """Test extension: always half the panel's maximum rate."""

    name = "half-max"

    def __init__(self, rate_hz):
        self.rate_hz = rate_hz

    def select_rate(self, now):
        del now
        return self.rate_hz


def make_half_max(context: GovernorContext) -> HalfMaxGovernor:
    # Module-level (not a closure): the batch engine ships extension
    # factories to fork/spawn workers by pickle-by-reference.
    return HalfMaxGovernor(context.spec.max_refresh_hz / 2.0)


@pytest.fixture
def half_max_governor():
    GOVERNORS.register("half-max", make_half_max)
    try:
        yield "half-max"
    finally:
        GOVERNORS.unregister("half-max")


class TestGovernorExtension:
    def test_registration_makes_config_valid(self, half_max_governor):
        config = SessionConfig(app="Facebook", governor="half-max",
                               duration_s=3.0, seed=1)
        result = run_session(config)
        assert session_summary_dict(result)["governor"] == "half-max"
        half = GALAXY_S3_PANEL.max_refresh_hz / 2.0
        assert result.mean_refresh_rate_hz < GALAXY_S3_PANEL.max_refresh_hz
        assert half in set(
            result.panel.rate_history.transitions[1].tolist())

    def test_unregistered_name_is_invalid_again(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(app="Facebook", governor="half-max")

    def test_extension_crosses_worker_pool(self, half_max_governor):
        configs = [SessionConfig(app="Facebook", governor="half-max",
                                 duration_s=3.0, seed=seed)
                   for seed in range(3)]
        serial = run_batch(configs, workers=1)
        pooled = run_batch(configs, workers=3, mp_context="fork")
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(pooled, sort_keys=True))
        assert all(s["governor"] == "half-max" for s in pooled)

    def test_extension_selectable_from_cli_compare(
            self, half_max_governor, capsys):
        code = cli_main(["compare", "--app", "Facebook",
                         "--governors", "half-max",
                         "--duration", "3", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "half-max" in out

    def test_extension_selectable_from_experiment(
            self, half_max_governor):
        from repro.experiments.replication import replicate_comparison

        replicated = replicate_comparison("Facebook",
                                          governor="half-max",
                                          seeds=(1,), duration_s=3.0)
        assert replicated.governor == "half-max"
