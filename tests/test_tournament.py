"""The governor tournament: determinism, caching, engines, probe.

The tournament's contract is the sweep's, generalized: the
``repro-tournament/1`` document is a pure function of the config —
byte-identical across runs, worker counts, engines, cache state, and
trace-file locations — while everything nondeterministic lives in the
separate stats document.
"""

import json

import pytest

from repro.cache import ResultCache
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.tournament import (
    BASELINE,
    TOURNAMENT_SCHEMA,
    TournamentConfig,
    format_tournament,
    probe_trace,
    run_tournament,
)
from repro.sim.session import GOVERNOR_CHOICES

#: A tournament small enough for tests, wide enough to be honest:
#: every registered governor, two catalog apps, one synthetic trace.
SMALL = dict(apps=("Facebook", "Jelly Splash"),
             trace_kinds=("video",),
             duration_s=3.0, trace_duration_s=3.0)


@pytest.fixture(scope="module")
def small_document():
    return run_tournament(TournamentConfig(**SMALL), workers=1)


def canonical(document):
    return json.dumps(document, sort_keys=True)


class TestDeterminism:
    def test_two_runs_byte_identical(self, small_document):
        again = run_tournament(TournamentConfig(**SMALL), workers=1)
        assert canonical(small_document) == canonical(again)

    def test_pooled_run_byte_identical(self, small_document):
        pooled = run_tournament(TournamentConfig(**SMALL), workers=2)
        assert canonical(small_document) == canonical(pooled)

    def test_engines_byte_identical(self, small_document):
        # `auto` (the default above) routes eligible catalog cells
        # through the vector fast path; `scalar` never does.  Same
        # bytes either way.
        scalar = run_tournament(TournamentConfig(**SMALL), workers=1,
                                engine="scalar")
        assert canonical(small_document) == canonical(scalar)

    def test_workdir_never_leaks_into_document(self, tmp_path,
                                               small_document):
        pinned = run_tournament(TournamentConfig(**SMALL), workers=1,
                                workdir=str(tmp_path / "traces"))
        assert canonical(small_document) == canonical(pinned)
        assert str(tmp_path) not in canonical(pinned)


class TestCaching:
    def test_warm_rerun_all_hits(self, tmp_path, small_document):
        cache_dir = tmp_path / "cache"
        cold_cache = ResultCache(cache_dir)
        cold = run_tournament(TournamentConfig(**SMALL), workers=1,
                              cache=cold_cache)
        cold_stats = cold_cache.stats_dict()
        catalog_cells = len(GOVERNOR_CHOICES) * len(SMALL["apps"])
        assert cold_stats["hits"] == 0
        assert cold_stats["misses"] == catalog_cells

        warm_cache = ResultCache(cache_dir)
        warm = run_tournament(TournamentConfig(**SMALL), workers=1,
                              cache=warm_cache)
        warm_stats = warm_cache.stats_dict()
        assert warm_stats["misses"] == 0
        assert warm_stats["hits"] == catalog_cells
        assert canonical(cold) == canonical(warm)
        assert canonical(small_document) == canonical(warm)


class TestDocument:
    def test_schema_and_coverage(self, small_document):
        assert small_document["schema"] == TOURNAMENT_SCHEMA
        assert tuple(small_document["governors"]) == GOVERNOR_CHOICES
        assert len(small_document["governors"]) >= 7
        workloads = small_document["workloads"]
        assert "app:Facebook" in workloads
        assert "synth:video" in workloads
        assert len(small_document["cells"]) == \
            len(GOVERNOR_CHOICES) * len(workloads)

    def test_leaderboard_ranked_by_power(self, small_document):
        board = small_document["leaderboard"]
        assert [row["rank"] for row in board] == \
            list(range(1, len(board) + 1))
        powers = [row["mean_power_mw"] for row in board]
        assert powers == sorted(powers)
        by_name = {row["governor"]: row for row in board}
        assert by_name[BASELINE]["savings_vs_fixed_pct"] == \
            pytest.approx(0.0)
        # Every governed policy saves power over fixed-60 on this
        # workload mix.
        for row in board:
            if row["governor"] != BASELINE:
                assert row["savings_vs_fixed_pct"] > 0

    def test_luminance_probe_dark_beats_light(self, small_document):
        probe = small_document["luminance_probe"]
        assert probe["governor"] == "luminance"
        assert probe["dark_below_light"] is True
        assert probe["dark"]["mean_power_mw"] < \
            probe["light"]["mean_power_mw"]
        # The dark frame also tolerates a lower refresh rate — the
        # SmartNight coupling, not just the emission model.
        assert probe["dark"]["mean_refresh_hz"] <= \
            probe["light"]["mean_refresh_hz"]

    def test_format_renders_leaderboard(self, small_document):
        text = format_tournament(small_document)
        assert "tournament:" in text
        for governor in GOVERNOR_CHOICES:
            assert governor in text
        assert "dark < light" in text


class TestProbeTrace:
    def test_probe_pair_is_deterministic(self):
        first = probe_trace(True, duration_s=3.0, seed=1)
        second = probe_trace(True, duration_s=3.0, seed=1)
        assert first.frame_count == second.frame_count
        assert [r.payload for r in first.records] == \
            [r.payload for r in second.records]

    def test_probe_pair_differs_only_in_emission(self):
        dark = probe_trace(True, duration_s=3.0, seed=1)
        light = probe_trace(False, duration_s=3.0, seed=1)
        assert dark.frame_count == light.frame_count
        assert [r.time for r in dark.records] == \
            [r.time for r in light.records]


class TestValidation:
    def test_unknown_trace_kind(self):
        with pytest.raises(ConfigurationError):
            TournamentConfig(trace_kinds=("cartoon",))

    def test_unknown_governor(self):
        config = TournamentConfig(governors=("no-such-governor",),
                                  **SMALL)
        with pytest.raises(ConfigurationError):
            config.resolve_governors()

    def test_baseline_required(self):
        config = TournamentConfig(governors=("section",), **SMALL)
        with pytest.raises(ConfigurationError):
            run_tournament(config)

    def test_needs_some_workload(self):
        with pytest.raises(ConfigurationError):
            TournamentConfig(apps=(), trace_kinds=())


class TestCli:
    def test_cli_roundtrip_and_check(self, tmp_path, capsys):
        out = tmp_path / "tournament.json"
        argv = ["tournament", "--apps", "Facebook",
                "--traces", "video", "--duration", "2",
                "--trace-duration", "2", "--no-probe",
                "--out", str(out)]
        assert cli_main(argv) == 0
        document = json.loads(out.read_text())
        assert document["schema"] == TOURNAMENT_SCHEMA
        assert document["luminance_probe"] is None
        capsys.readouterr()
        assert cli_main(argv + ["--check", str(out)]) == 0
        assert "tournament check: OK" in capsys.readouterr().out

    def test_cli_check_fails_on_drift(self, tmp_path, capsys):
        out = tmp_path / "tournament.json"
        argv = ["tournament", "--apps", "Facebook",
                "--traces", "video", "--duration", "2",
                "--trace-duration", "2", "--no-probe"]
        assert cli_main(argv + ["--out", str(out)]) == 0
        drifted = json.loads(out.read_text())
        drifted["leaderboard"][0]["mean_power_mw"] += 1.0
        out.write_text(json.dumps(drifted))
        capsys.readouterr()
        assert cli_main(argv + ["--check", str(out)]) == 1
