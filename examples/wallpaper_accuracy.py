#!/usr/bin/env python3
"""Reproduce the metering-accuracy study (Figure 6) interactively.

The grid comparator only looks at one pixel per grid cell, so a small
enough change can slip between the samples.  The paper stresses the
meter with the Nexus Revamped live wallpaper — a handful of small dots
drifting across an otherwise static screen — and sweeps the number of
compared pixels.  This example runs that sweep at the native 720x1280
resolution and also times the comparison itself against the 16.67 ms
V-Sync budget.

Run:  python examples/wallpaper_accuracy.py
"""

from repro.experiments import fig6
from repro.units import VSYNC_DEADLINE_60HZ_S


def main() -> None:
    print("Sweeping the Figure 6 pixel budgets on the moving-dots "
          "stressor\n(two 12x12 px dots jumping a dot-width per frame, "
          "20 fps, 720x1280)...\n")
    result = fig6.run(duration_s=12.0, seed=3, repeats=40)
    print(result.format())

    exact = [a for a in result.accuracy if a.error_rate == 0.0]
    cheapest_exact = min(exact, key=lambda a: a.sample_count)
    print(f"\nThe V-Sync budget at 60 Hz is "
          f"{1e3 * VSYNC_DEADLINE_60HZ_S:.2f} ms per frame; comparing "
          f"all 921K pixels\nblows it, while the "
          f"{cheapest_exact.label} grid "
          f"({cheapest_exact.grid_width}x"
          f"{cheapest_exact.grid_height} samples) is the smallest "
          f"budget with zero\nerror — the paper's operating point.  "
          f"The knife edge is geometric: a\n12 px dot always covers a "
          f"sample of the 10 px-cell (9K) grid but can\nslip between "
          f"the 15 px (4K) and 20 px (2K) grids' samples.")


if __name__ == "__main__":
    main()
