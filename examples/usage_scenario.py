#!/usr/bin/env python3
"""A realistic usage scenario: messaging, a game, then the feed.

Single-app sessions answer "how much does app X save"; a scenario
answers the question a battery engineer actually asks: what happens
over a stretch of *real use*, where the workload changes under the
governor?  This example runs a three-segment scenario — KakaoTalk,
Jelly Splash, Facebook — in one simulation: app switches tear down the
old surface, flash a launch frame, and start the next app's own Monkey
script, while the display manager keeps running throughout.

Run:  python examples/usage_scenario.py
"""

from repro import ScenarioConfig, ScenarioSegment, run_scenario

SEGMENTS = (
    ScenarioSegment("KakaoTalk", 25.0),
    ScenarioSegment("Jelly Splash", 25.0),
    ScenarioSegment("Facebook", 25.0),
)
SEED = 1


def main() -> None:
    print("Running a 75 s usage scenario (messenger -> game -> feed) "
          "under the\nfixed baseline and the full proposed system...\n")

    base = run_scenario(ScenarioConfig(segments=SEGMENTS,
                                       governor="fixed", seed=SEED))
    governed = run_scenario(ScenarioConfig(segments=SEGMENTS,
                                           governor="section+boost",
                                           seed=SEED))

    print(f"{'segment':14s} {'window':>9s} {'baseline mW':>12s} "
          f"{'saved mW':>9s} {'quality':>8s} {'refresh Hz':>11s}")
    for i, segment in enumerate(governed.segments):
        b = base.segment_power(base.segments[i]).mean_power_mw
        g = governed.segment_power(segment).mean_power_mw
        quality = governed.segment_quality(i, base)
        refresh = governed.panel.rate_history.mean(segment.start_s,
                                                   segment.end_s)
        print(f"{segment.profile.name:14s} "
              f"{segment.start_s:3.0f}-{segment.end_s:3.0f} s "
              f"{b:12.0f} {b - g:9.0f} {100 * quality:7.1f}% "
              f"{refresh:11.1f}")

    total_base = base.power_report()
    total_gov = governed.power_report()
    saved = total_base.mean_power_mw - total_gov.mean_power_mw
    energy_saved = total_base.energy_mj - total_gov.energy_mj
    print(f"\nScenario total: {saved:.0f} mW mean saving "
          f"({energy_saved / 1000:.1f} J over 75 s), "
          f"{governed.panel.rate_switches} panel mode switches.")
    print("\nThe governor re-adapts within a second of each app "
          "switch: it camps at\n20-24 Hz for the messenger, rides "
          "24-60 Hz through the game's bursts,\nand drops again for "
          "the feed — no per-app configuration anywhere.")


if __name__ == "__main__":
    main()
