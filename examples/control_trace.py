#!/usr/bin/env python3
"""Watch the governor work: a Figure 7-style control trace in ASCII.

Runs Facebook under section-based control with and without touch
boosting and renders the refresh rate and measured content rate second
by second, with touch instants marked.  The paper's two mechanisms are
visible directly in the timeline:

* after a touch, section-only control climbs the table one level at a
  time (24 -> 30 -> 40 ...), dropping frames while it lags;
* touch boosting jumps straight to 60 Hz at the touch and hands back
  to the table once the meter has caught up.

Run:  python examples/control_trace.py
"""

from repro import SessionConfig, run_session
from repro.analysis.ascii_plot import timeline as level_timeline

APP = "Facebook"
DURATION_S = 40.0
SEED = 6

#: Galaxy S3 refresh levels and their timeline symbols.
LEVELS = (20.0, 24.0, 30.0, 40.0, 60.0)
SYMBOLS = "_.-=#"


def timeline(result) -> str:
    centers, _ = result.meter.meaningful_frames.binned_rate(
        0.0, DURATION_S, 1.0)
    refresh = result.panel.rate_history.sample(centers)
    return level_timeline(refresh, levels=LEVELS, symbols=SYMBOLS)


def touch_line(result) -> str:
    marks = [" "] * int(DURATION_S)
    for t in result.touch_script.times:
        marks[min(int(t), len(marks) - 1)] = "T"
    return "".join(marks)


def main() -> None:
    sessions = {
        governor: run_session(SessionConfig(
            app=APP, governor=governor, duration_s=DURATION_S,
            seed=SEED))
        for governor in ("section", "section+boost")
    }

    legend = "  ".join(f"{symbol}={rate:g}Hz"
                       for symbol, rate in zip(SYMBOLS, LEVELS))
    print(f"{APP}, {DURATION_S:.0f} s, one character per second "
          f"(T marks a touch)\nrefresh-rate legend: {legend}\n")
    any_result = next(iter(sessions.values()))
    print(f"{'touches':16s} {touch_line(any_result)}")
    for governor, result in sessions.items():
        print(f"{governor:16s} {timeline(result)}")

    print()
    for governor, result in sessions.items():
        switches = result.panel.rate_switches
        boosts = getattr(result.driver.policy, "boosts", 0)
        print(f"{governor:16s} mean refresh "
              f"{result.mean_refresh_rate_hz:5.1f} Hz, "
              f"{switches:3d} rate switches, {boosts:3d} boosts")

    print("\nNotice the '#' bursts: with boosting they start exactly "
          "at each 'T';\nwithout it the trace ramps through "
          "'.'/'-'/'=' first — those ramp\nseconds are where Figure "
          "7(a)'s dropped frames live.")


if __name__ == "__main__":
    main()
