#!/usr/bin/env python3
"""Battery life: what the paper's milliwatts mean in screen-on minutes.

Milliwatt tables are for engineers; users feel screen-on time.  This
example converts the saving on a few representative apps into minutes
of extra use on the Galaxy S3's 2100 mAh pack, and replicates one
comparison across several Monkey seeds to show the gain is not one
lucky script (bootstrap 95 % confidence interval on the mean saving).

Run:  python examples/battery_life.py
"""

from repro import SessionConfig, run_session
from repro.analysis.ascii_plot import bar_chart
from repro.experiments import replicate_comparison
from repro.power import minutes_gained, screen_on_hours

APPS = ("Facebook", "MX Player", "Jelly Splash", "TempleRun")
DURATION_S = 40.0
SEED = 1


def main() -> None:
    print(f"Screen-on time on the Galaxy S3's 2100 mAh pack "
          f"({DURATION_S:.0f} s sessions, seed {SEED}):\n")

    rows = []
    for app in APPS:
        base = run_session(SessionConfig(
            app=app, governor="fixed", duration_s=DURATION_S,
            seed=SEED))
        governed = run_session(SessionConfig(
            app=app, governor="section+boost", duration_s=DURATION_S,
            seed=SEED))
        p_base = base.power_report().mean_power_mw
        p_gov = governed.power_report().mean_power_mw
        gained = minutes_gained(p_base, p_gov)
        rows.append((app, p_base, p_gov, gained))
        print(f"{app:14s} {p_base:6.0f} mW -> {p_gov:6.0f} mW   "
              f"screen-on {screen_on_hours(p_base):4.1f} h -> "
              f"{screen_on_hours(p_gov):4.1f} h   "
              f"(+{gained:.0f} min)")

    print("\nMinutes of screen-on time gained:\n")
    print(bar_chart([r[0] for r in rows], [r[3] for r in rows],
                    width=36, unit=" min"))

    print("\nIs the game's gain real or one lucky Monkey script?  "
          "Replicating across\nfive seeds:\n")
    comparison = replicate_comparison("Jelly Splash",
                                      seeds=(1, 2, 3, 4, 5),
                                      duration_s=DURATION_S)
    low, high = comparison.saving_confidence_interval()
    print(f"  saving {comparison.saved_stats} mW across "
          f"{len(comparison.seeds)} seeds")
    print(f"  bootstrap 95% CI on the mean saving: "
          f"[{low:.0f}, {high:.0f}] mW "
          f"({'significant' if comparison.saving_is_significant() else 'NOT significant'})")
    print(f"  quality {comparison.quality_stats} % — the time is "
          f"gained without visible cost.")


if __name__ == "__main__":
    main()
