#!/usr/bin/env python3
"""Stutter, smooth mode, and panel type: three extension studies.

The paper reports average display quality; this example digs into the
parts a product team would ask about next:

1. **Jank** — are the dropped frames scattered (invisible) or bunched
   into freezes (very visible)?  `repro.analysis.jank` extracts the
   run structure.
2. **Smooth mode** — `SessionConfig(table_bias=1)` shifts every
   section of the Equation (1) table one refresh level up: a
   quality-priority knob between the paper's table and fixed 60 Hz.
3. **Panel type** — the same sessions priced under an LCD calibration:
   on a backlight-dominated panel the governor saves less, a caveat a
   single-device evaluation cannot show.

Run:  python examples/jank_and_modes.py
"""

from repro import PowerModel, SessionConfig, run_session
from repro.analysis.jank import session_jank
from repro.core import quality_vs_baseline
from repro.power.calibration import lcd_phone_calibration

APP = "Jelly Splash"
DURATION_S = 40.0
SEED = 2

CONFIGS = (
    ("fixed 60 Hz", dict(governor="fixed")),
    ("section (paper)", dict(governor="section")),
    ("section, smooth mode", dict(governor="section", table_bias=1)),
    ("section + boost", dict(governor="section+boost")),
)


def main() -> None:
    print(f"{APP}, {DURATION_S:.0f} s, identical workload "
          f"(seed {SEED}):\n")

    sessions = {
        label: run_session(SessionConfig(app=APP,
                                         duration_s=DURATION_S,
                                         seed=SEED, **kwargs))
        for label, kwargs in CONFIGS
    }
    base = sessions["fixed 60 Hz"]
    base_power = base.power_report().mean_power_mw
    lcd_model = PowerModel(lcd_phone_calibration())
    base_lcd = base.power_report(lcd_model).mean_power_mw

    print(f"{'configuration':22s} {'saved mW':>9s} {'lcd saved':>10s} "
          f"{'quality':>8s} {'lost %':>7s} {'stutters/min':>13s} "
          f"{'worst run':>10s}")
    for label, result in sessions.items():
        saved = base_power - result.power_report().mean_power_mw
        saved_lcd = base_lcd - \
            result.power_report(lcd_model).mean_power_mw
        quality = quality_vs_baseline(result.mean_content_rate_fps,
                                      base.mean_content_rate_fps)
        jank = session_jank(result, min_run=2)
        print(f"{label:22s} {saved:9.0f} {saved_lcd:10.0f} "
              f"{100 * quality:7.1f}% {100 * jank.lost_fraction:6.1f}% "
              f"{jank.episodes_per_minute:13.2f} "
              f"{jank.worst_run:10d}")

    print("\nReading the table:")
    print("  * section-only loses a quarter of the game's burst "
          "frames — but as\n    scattered judder (runs of 1-2), not "
          "long freezes: at these content/\n    refresh ratios the "
          "drops interleave.  The jank columns make the\n    *shape* "
          "of the loss visible, which the average quality % cannot;")
    print("  * smooth mode (one level of extra headroom) recovers "
          "half the lost\n    frames for ~110 mW of the saving — "
          "without any touch information;")
    print("  * touch boosting gets both: near-zero loss and most of "
          "the saving;")
    print("  * every saving shrinks on the LCD calibration — the "
          "scheme's appeal is\n    strongest on emission-efficient "
          "panels with costly scan-out.")


if __name__ == "__main__":
    main()
