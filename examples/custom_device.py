#!/usr/bin/env python3
"""Port the scheme to a different panel (the paper's Equation 1 note).

"Note that the thresholds should be redefined when the available
refresh rates are changed."  This example builds the section table for
three very different panels — the paper's Galaxy S3, a coarse
three-level display, and a modern LTPO panel with levels from 1 to
120 Hz — prints each Figure-5-style table, and runs the same idle-heavy
application on all of them to show how a deeper level set converts
directly into deeper savings.

Run:  python examples/custom_device.py
"""

from repro import (
    GALAXY_S3_PANEL,
    LTPO_120_PANEL,
    PanelSpec,
    SectionTable,
    SessionConfig,
    run_session,
)

#: A hypothetical mid-range panel, defined from scratch: resolution
#: plus the discrete refresh rates its driver IC supports.  That is
#: all the scheme needs to know about a device.
CUSTOM_PANEL = PanelSpec(
    name="Custom mid-range panel",
    width=1080,
    height=2340,
    refresh_rates_hz=(30.0, 60.0, 90.0),
)

APP = "Facebook"
DURATION_S = 40.0
SEED = 4


def show_table(spec: PanelSpec) -> None:
    print(f"--- {spec.name} "
          f"(levels: {', '.join(f'{r:g}' for r in spec.refresh_rates_hz)}"
          f" Hz) ---")
    print(SectionTable.for_panel(spec).describe())
    print()


def run_panel(spec: PanelSpec) -> None:
    base = run_session(SessionConfig(app=APP, governor="fixed",
                                     duration_s=DURATION_S, seed=SEED,
                                     panel=spec))
    governed = run_session(SessionConfig(app=APP,
                                         governor="section+boost",
                                         duration_s=DURATION_S,
                                         seed=SEED, panel=spec))
    saved = (base.power_report().mean_power_mw -
             governed.power_report().mean_power_mw)
    print(f"{spec.name:28s} mean refresh "
          f"{governed.mean_refresh_rate_hz:5.1f} Hz   "
          f"saved {saved:5.0f} mW")


def main() -> None:
    for spec in (GALAXY_S3_PANEL, CUSTOM_PANEL, LTPO_120_PANEL):
        show_table(spec)

    print(f"Running {APP} ({DURATION_S:.0f} s, same workload) on each "
          f"panel:\n")
    for spec in (GALAXY_S3_PANEL, CUSTOM_PANEL, LTPO_120_PANEL):
        run_panel(spec)

    print("\nThe governor code is untouched across panels — only the "
          "section table\nis rebuilt from the level set.  The LTPO "
          "panel's 1-10 Hz levels let an\nidle feed app park far below "
          "the Galaxy S3's 20 Hz floor, which is\nexactly where modern "
          "adaptive-refresh phones get their gains.")


if __name__ == "__main__":
    main()
