#!/usr/bin/env python3
"""Survey a slice of the 30-app catalog (Figures 3/9/11 in miniature).

For each selected application this runs the fixed-60 Hz baseline and
the full proposed system, then prints the redundancy split, the power
saving, and the display quality — one row per app, like the paper's
per-app bar charts.

Run:  python examples/app_survey.py [app ...]
      (no arguments: a representative six-app slice)
"""

import sys

from repro import SessionConfig, all_app_names, app_profile, run_session
from repro.core import quality_vs_baseline

DEFAULT_APPS = ("Facebook", "MX Player", "Cash Slide", "Jelly Splash",
                "TempleRun", "Tiny Flashlight")
DURATION_S = 40.0
SEED = 2


def survey_app(name: str) -> dict:
    base = run_session(SessionConfig(app=name, governor="fixed",
                                     duration_s=DURATION_S, seed=SEED))
    governed = run_session(SessionConfig(app=name,
                                         governor="section+boost",
                                         duration_s=DURATION_S,
                                         seed=SEED))
    base_power = base.power_report().mean_power_mw
    gov_power = governed.power_report().mean_power_mw
    return {
        "category": app_profile(name).category.value,
        "frame_fps": base.mean_frame_rate_fps,
        "content_fps": base.mean_content_rate_fps,
        "redundant_fps": base.mean_redundant_rate_fps,
        "baseline_mw": base_power,
        "saved_mw": base_power - gov_power,
        "quality": quality_vs_baseline(governed.mean_content_rate_fps,
                                       base.mean_content_rate_fps),
    }


def main() -> None:
    apps = sys.argv[1:] or list(DEFAULT_APPS)
    known = set(all_app_names())
    unknown = [a for a in apps if a not in known]
    if unknown:
        raise SystemExit(f"unknown apps {unknown}; choose from "
                         f"{sorted(known)}")

    print(f"{'app':16s} {'category':8s} {'frame':>6s} {'content':>8s} "
          f"{'redund.':>8s} {'power mW':>9s} {'saved mW':>9s} "
          f"{'quality':>8s}")
    for name in apps:
        row = survey_app(name)
        print(f"{name:16s} {row['category']:8s} "
              f"{row['frame_fps']:6.1f} {row['content_fps']:8.1f} "
              f"{row['redundant_fps']:8.1f} {row['baseline_mw']:9.0f} "
              f"{row['saved_mw']:9.0f} {100 * row['quality']:7.1f}%")

    print("\nReading the table: savings track the *redundant* frame "
          "rate, not the\nframe rate — MX Player (24 fps of genuine "
          "video) saves only the panel\ncomponent, while Jelly Splash "
          "(mostly redundant 60 fps) collapses to\nthe content's real "
          "needs.  Quality stays near 100% everywhere because\ntouch "
          "boosting absorbs the interaction bursts.")


if __name__ == "__main__":
    main()
