#!/usr/bin/env python3
"""Author a custom application profile and compare every governor.

The catalog's 30 apps are synthetic profiles fit to the paper's survey;
this example shows the full profile surface by defining a new app — a
turn-based strategy game with a slow map animation, heavy touch bursts,
and a wasteful free-running render loop — and racing all seven governor
configurations on the identical workload.

Run:  python examples/custom_app.py
"""

from repro import (
    AppCategory,
    AppProfile,
    GOVERNOR_CHOICES,
    SessionConfig,
    run_session,
)
from repro.apps.profile import ContentProcess, RenderStyle
from repro.core import quality_vs_baseline

MY_GAME = AppProfile(
    name="Turnwise Tactics",
    category=AppCategory.GAME,
    idle_content_fps=5.0,        # slow idle map animation
    active_content_fps=40.0,     # unit-move animations after a tap
    burst_duration_s=2.5,
    content_process=ContentProcess.ANIMATION,
    idle_submit_fps=60.0,        # wasteful free-running loop
    render_style=RenderStyle.SCENE,
    render_cost_mj=5.0,
    cpu_base_mw=260.0,
    touch_events_per_s=0.3,
    scroll_fraction=0.1,
    notes="example custom profile",
)

DURATION_S = 40.0
SEED = 8


def main() -> None:
    print(f"Racing all governors on {MY_GAME.name!r} "
          f"({DURATION_S:.0f} s, identical workload)...\n")

    results = {
        governor: run_session(SessionConfig(
            app=MY_GAME, governor=governor, duration_s=DURATION_S,
            seed=SEED))
        for governor in GOVERNOR_CHOICES
    }
    baseline = results["fixed"]
    base_power = baseline.power_report().mean_power_mw
    base_content = baseline.mean_content_rate_fps

    print(f"{'governor':20s} {'saved mW':>9s} {'quality':>8s} "
          f"{'refresh Hz':>11s} {'switches':>9s}")
    for governor, result in results.items():
        saved = base_power - result.power_report().mean_power_mw
        quality = quality_vs_baseline(result.mean_content_rate_fps,
                                      base_content)
        print(f"{governor:20s} {saved:9.0f} {100 * quality:7.1f}% "
              f"{result.mean_refresh_rate_hz:11.1f} "
              f"{result.panel.rate_switches:9d}")

    print("\nHow to read this:")
    print("  * 'oracle' is the upper bound (it reads the true content "
          "rate);")
    print("  * 'section+boost' should sit close to it — that is the "
          "paper's result;")
    print("  * 'naive' saves the most only by latching low and "
          "butchering quality;")
    print("  * 'e3' reacts to touches but is blind to the idle "
          "animation;")
    print("  * 'section+hysteresis' trades a few mW for far fewer "
          "panel mode switches.")


if __name__ == "__main__":
    main()
